#include "obs/exporters.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

namespace xpred::obs {

namespace {

/// Shortest float rendering that is stable across platforms for the
/// values we emit (integers stay integral: 7 -> "7", not "7.0").
std::string FormatNumber(double value) {
  if (std::isfinite(value) &&
      value == static_cast<double>(static_cast<int64_t>(value))) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<int64_t>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// Prometheus exposition escaping for HELP text: backslash and
/// newline only (HELP is not quoted, so double quotes pass through —
/// OpenMetrics §"ABNF", matching promtool's parser).
std::string PrometheusEscapeHelp(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void WriteSeries(std::ostream* out, const std::string& name,
                 const std::string& labels, std::string_view extra_label,
                 const std::string& value) {
  *out << name;
  if (!labels.empty() || !extra_label.empty()) {
    *out << '{' << labels;
    if (!labels.empty() && !extra_label.empty()) *out << ',';
    *out << extra_label << '}';
  }
  *out << ' ' << value << '\n';
}

void WriteJsonBody(const MetricsSnapshot& snapshot, std::ostream* out,
                   const char* indent) {
  *out << indent << "\"counters\": {";
  bool first = true;
  for (const auto& [key, value] : snapshot.counters) {
    *out << (first ? "" : ",") << "\n" << indent << "  \""
         << JsonEscape(key) << "\": " << value;
    first = false;
  }
  *out << (first ? "" : "\n") << (first ? "" : indent) << "},\n";

  *out << indent << "\"gauges\": {";
  first = true;
  for (const auto& [key, value] : snapshot.gauges) {
    *out << (first ? "" : ",") << "\n" << indent << "  \""
         << JsonEscape(key) << "\": " << FormatNumber(value);
    first = false;
  }
  *out << (first ? "" : "\n") << (first ? "" : indent) << "},\n";

  *out << indent << "\"histograms\": {";
  first = true;
  for (const auto& [key, hist] : snapshot.histograms) {
    *out << (first ? "" : ",") << "\n" << indent << "  \""
         << JsonEscape(key) << "\": {"
         << "\"count\": " << hist.count << ", \"sum\": " << hist.sum
         << ", \"min\": " << hist.min << ", \"max\": " << hist.max
         << ", \"p50\": " << FormatNumber(hist.Quantile(0.50))
         << ", \"p90\": " << FormatNumber(hist.Quantile(0.90))
         << ", \"p99\": " << FormatNumber(hist.Quantile(0.99))
         << ", \"buckets\": [";
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      *out << (i == 0 ? "" : ", ") << '[' << hist.buckets[i].first << ", "
           << hist.buckets[i].second << ']';
    }
    *out << "]}";
    first = false;
  }
  *out << (first ? "" : "\n") << (first ? "" : indent) << "}\n";
}

}  // namespace

void WritePrometheusText(const MetricsRegistry& registry, std::ostream* out) {
  for (const auto& [name, family] : registry.families()) {
    if (!family.help.empty()) {
      *out << "# HELP " << name << ' ' << PrometheusEscapeHelp(family.help)
           << '\n';
    }
    *out << "# TYPE " << name << ' ';
    switch (family.type) {
      case MetricType::kCounter:
        *out << "counter";
        break;
      case MetricType::kGauge:
        *out << "gauge";
        break;
      case MetricType::kHistogram:
        *out << "histogram";
        break;
    }
    *out << '\n';

    for (const auto& [labels, instance] : family.instances) {
      switch (family.type) {
        case MetricType::kCounter:
          WriteSeries(out, name, labels, "",
                      std::to_string(instance.counter.value()));
          break;
        case MetricType::kGauge:
          WriteSeries(out, name, labels, "",
                      FormatNumber(instance.gauge.value()));
          break;
        case MetricType::kHistogram: {
          if (instance.histogram == nullptr) break;
          const Histogram& hist = *instance.histogram;
          uint64_t cumulative = 0;
          for (uint32_t i = 0; i < Histogram::kBucketCount; ++i) {
            if (hist.buckets()[i] == 0) continue;
            cumulative += hist.buckets()[i];
            WriteSeries(
                out, name + "_bucket", labels,
                "le=\"" + std::to_string(Histogram::BucketUpperBound(i)) +
                    "\"",
                std::to_string(cumulative));
          }
          WriteSeries(out, name + "_bucket", labels, "le=\"+Inf\"",
                      std::to_string(hist.count()));
          WriteSeries(out, name + "_sum", labels, "",
                      std::to_string(hist.sum()));
          WriteSeries(out, name + "_count", labels, "",
                      std::to_string(hist.count()));
          break;
        }
      }
    }
  }
}

void WriteJson(const MetricsSnapshot& snapshot, std::ostream* out) {
  *out << "{\n";
  WriteJsonBody(snapshot, out, "  ");
  *out << "}\n";
}

void WriteJson(const MetricsRegistry& registry, std::ostream* out) {
  WriteJson(registry.Snapshot(), out);
}

void WriteMetricsSidecarJson(const MetricsSnapshot& snapshot,
                             std::string_view source,
                             std::string_view engine_name,
                             std::ostream* out) {
  WriteMetricsSidecarJson(snapshot, source, engine_name, "", out);
}

void WriteMetricsSidecarJson(const MetricsSnapshot& snapshot,
                             std::string_view source,
                             std::string_view engine_name,
                             std::string_view workload_json,
                             std::ostream* out) {
  WriteMetricsSidecarJson(snapshot, source, engine_name, workload_json, "",
                          out);
}

void WriteMetricsSidecarJson(const MetricsSnapshot& snapshot,
                             std::string_view source,
                             std::string_view engine_name,
                             std::string_view workload_json,
                             std::string_view recorder_json,
                             std::ostream* out) {
  *out << "{\n  \"schema_version\": 1,\n  \"source\": \""
       << JsonEscape(source) << "\",\n  \"engine\": \""
       << JsonEscape(engine_name) << "\",\n";
  if (!workload_json.empty()) {
    *out << "  \"workload\": " << workload_json << ",\n";
  }
  if (!recorder_json.empty()) {
    *out << "  \"recorder\": " << recorder_json << ",\n";
  }
  WriteJsonBody(snapshot, out, "  ");
  *out << "}\n";
}

std::string RenderRecorderSidecarJson(
    const FlightRecorder& recorder,
    const FlightRecorder::Snapshot& snapshot) {
  std::map<std::string_view, uint64_t> by_type;
  for (const FlightRecorder::Event& event : snapshot.events) {
    ++by_type[EventTypeName(event.type)];
  }
  std::string out = "{\"events_per_thread\": ";
  out += std::to_string(recorder.events_per_thread());
  out += ", \"registered_threads\": ";
  out += std::to_string(recorder.registered_threads());
  out += ", \"events\": ";
  out += std::to_string(snapshot.events.size());
  out += ", \"dropped\": ";
  out += std::to_string(snapshot.dropped);
  out += ", \"unregistered_drops\": ";
  out += std::to_string(snapshot.unregistered_drops);
  out += ", \"events_by_type\": {";
  bool first = true;
  for (const auto& [name, count] : by_type) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    out += name;
    out += "\": ";
    out += std::to_string(count);
  }
  out += "}}";
  return out;
}

}  // namespace xpred::obs
