#include "obs/introspection_server.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "obs/exporters.h"

namespace xpred::obs {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

IntrospectionHub::IntrospectionHub() {
  build_info_.compiler = __VERSION__;
#ifdef NDEBUG
  build_info_.build_type = "optimized";
#else
  build_info_.build_type = "debug";
#endif
}

void IntrospectionHub::PublishMetrics(const MetricsRegistry& registry) {
  // Render OUTSIDE the lock: only the pointer swap is shared.
  std::ostringstream text;
  WritePrometheusText(registry, &text);
  auto rendered = std::make_shared<const std::string>(text.str());
  auto snapshot = std::make_shared<const MetricsSnapshot>(
      registry.Snapshot());
  {
    std::lock_guard<std::mutex> lock(mu_);
    prometheus_text_ = std::move(rendered);
    snapshot_ = std::move(snapshot);
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
  last_publish_nanos_.store(uptime_.ElapsedNanos(),
                            std::memory_order_relaxed);
}

bool IntrospectionHub::MaybePublishMetrics(const MetricsRegistry& registry,
                                           uint64_t min_interval_ms) {
  const int64_t last = last_publish_nanos_.load(std::memory_order_relaxed);
  if (last >= 0 && uptime_.ElapsedNanos() - last <
                       static_cast<int64_t>(min_interval_ms) * 1'000'000) {
    return false;
  }
  PublishMetrics(registry);
  return true;
}

void IntrospectionHub::PublishWorkload(std::string workload_json) {
  auto published =
      std::make_shared<const std::string>(std::move(workload_json));
  std::lock_guard<std::mutex> lock(mu_);
  workload_json_ = std::move(published);
}

void IntrospectionHub::PublishSpans(std::vector<Span> spans) {
  auto published =
      std::make_shared<const std::vector<Span>>(std::move(spans));
  std::lock_guard<std::mutex> lock(mu_);
  spans_ = std::move(published);
}

void IntrospectionHub::AddCheck(std::string name, CheckKind kind,
                                std::function<HealthCheckResult()> probe) {
  checks_.push_back(Check{std::move(name), kind, std::move(probe)});
}

void IntrospectionHub::AddWatchdogCheck(const Watchdog* watchdog) {
  AddCheck("watchdog", CheckKind::kLiveness, [watchdog] {
    const Watchdog::Stats stats = watchdog->stats();
    HealthCheckResult result;
    if (stats.stalled_now > 0) {
      result.ok = false;
      result.detail = std::to_string(stats.stalled_now) +
                      " worker(s) stalled (" +
                      std::to_string(stats.stalls) + " episode(s) total)";
    } else {
      result.detail = "no stalled workers after " +
                      std::to_string(stats.scans) + " scan(s)";
    }
    return result;
  });
}

void IntrospectionHub::AddBreakerCheck() {
  AddCheck("breaker", CheckKind::kReadiness, [this] {
    HealthCheckResult result;
    std::shared_ptr<const MetricsSnapshot> snapshot = metrics_snapshot();
    if (snapshot == nullptr) {
      result.ok = false;
      result.detail = "no metrics published yet";
      return result;
    }
    for (const auto& [key, value] : snapshot->gauges) {
      if (key.rfind("xpred_breaker_state", 0) != 0) continue;
      if (value == 1.0) {
        result.ok = false;
        result.detail = "circuit breaker open: " + key;
        return result;
      }
    }
    result.detail = "no open circuit breaker";
    return result;
  });
}

std::shared_ptr<const std::string> IntrospectionHub::prometheus_text()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return prometheus_text_;
}

std::shared_ptr<const MetricsSnapshot> IntrospectionHub::metrics_snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

std::shared_ptr<const std::string> IntrospectionHub::workload_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workload_json_;
}

std::shared_ptr<const std::vector<IntrospectionHub::Span>>
IntrospectionHub::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<IntrospectionHub::CheckOutcome> IntrospectionHub::RunChecks(
    bool include_readiness) const {
  std::vector<CheckOutcome> outcomes;
  for (const Check& check : checks_) {
    if (check.kind == CheckKind::kReadiness && !include_readiness) {
      continue;
    }
    CheckOutcome outcome;
    outcome.name = check.name;
    outcome.kind = check.kind;
    outcome.result = check.probe();
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

double IntrospectionHub::uptime_seconds() const {
  return static_cast<double>(uptime_.ElapsedNanos()) / 1e9;
}

double IntrospectionHub::metrics_age_seconds() const {
  const int64_t last = last_publish_nanos_.load(std::memory_order_relaxed);
  if (last < 0) return -1.0;
  return static_cast<double>(uptime_.ElapsedNanos() - last) / 1e9;
}

IntrospectionServer::IntrospectionServer(IntrospectionHub* hub,
                                         const Options& options)
    : hub_(hub),
      server_(
          [&options] {
            net::HttpServer::Options http;
            http.bind_address = options.bind_address;
            http.port = options.port;
            return http;
          }(),
          &router_) {
  Mount();
}

IntrospectionServer::~IntrospectionServer() { Stop(); }

Status IntrospectionServer::Start() { return server_.Start(); }

void IntrospectionServer::Stop() { server_.Stop(); }

void IntrospectionServer::Mount() {
  router_.Handle("/",
                 [this](const net::HttpRequest& r) { return Index(r); });
  router_.Handle("/metrics", [this](const net::HttpRequest& r) {
    return Metrics(r);
  });
  router_.Handle("/healthz", [this](const net::HttpRequest&) {
    return Health(/*include_readiness=*/false);
  });
  router_.Handle("/readyz", [this](const net::HttpRequest&) {
    return Health(/*include_readiness=*/true);
  });
  router_.Handle("/statusz", [this](const net::HttpRequest& r) {
    return Statusz(r);
  });
  router_.Handle("/debug/workload", [this](const net::HttpRequest& r) {
    return DebugWorkload(r);
  });
  router_.Handle("/debug/recorder", [this](const net::HttpRequest& r) {
    return DebugRecorder(r);
  });
  router_.Handle("/debug/trace", [this](const net::HttpRequest& r) {
    return DebugTrace(r);
  });
}

net::HttpResponse IntrospectionServer::Index(
    const net::HttpRequest&) const {
  std::string body = "xpred introspection plane\n\n";
  for (const std::string& path : router_.paths()) {
    body += path;
    body += '\n';
  }
  return net::HttpResponse::Text(200, std::move(body));
}

net::HttpResponse IntrospectionServer::Metrics(
    const net::HttpRequest&) const {
  std::shared_ptr<const std::string> text = hub_->prometheus_text();
  net::HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  if (text != nullptr) response.body = *text;
  return response;
}

net::HttpResponse IntrospectionServer::Health(
    bool include_readiness) const {
  const std::vector<IntrospectionHub::CheckOutcome> outcomes =
      hub_->RunChecks(include_readiness);
  bool healthy = true;
  std::string body = "{\n  \"checks\": [";
  bool first = true;
  for (const IntrospectionHub::CheckOutcome& outcome : outcomes) {
    healthy = healthy && outcome.result.ok;
    body += first ? "\n" : ",\n";
    first = false;
    body += "    {\"name\": \"" + JsonEscape(outcome.name) +
            "\", \"kind\": \"";
    body += outcome.kind == IntrospectionHub::CheckKind::kLiveness
                ? "liveness"
                : "readiness";
    body += "\", \"ok\": ";
    body += outcome.result.ok ? "true" : "false";
    body += ", \"detail\": \"" + JsonEscape(outcome.result.detail) + "\"}";
  }
  body += first ? "],\n" : "\n  ],\n";
  body += std::string("  \"status\": \"") +
          (healthy ? "ok" : "unhealthy") + "\"\n}\n";
  return net::HttpResponse::Json(healthy ? 200 : 503, std::move(body));
}

net::HttpResponse IntrospectionServer::Statusz(
    const net::HttpRequest&) const {
  const IntrospectionHub::BuildInfo& build = hub_->build_info();
  const net::HttpServer::Stats http = server_.stats();
  std::shared_ptr<const MetricsSnapshot> snapshot =
      hub_->metrics_snapshot();

  std::string body = "{\n";
  body += "  \"service\": \"xpred\",\n";
  body += "  \"build\": {\"version\": \"" + JsonEscape(build.version) +
          "\", \"build_type\": \"" + JsonEscape(build.build_type) +
          "\", \"compiler\": \"" + JsonEscape(build.compiler) + "\"},\n";
  body += "  \"uptime_seconds\": " + FormatDouble(hub_->uptime_seconds()) +
          ",\n";
  body += "  \"metrics_publishes\": " +
          std::to_string(hub_->metrics_publishes()) + ",\n";
  body += "  \"metrics_age_seconds\": " +
          FormatDouble(hub_->metrics_age_seconds()) + ",\n";
  body += "  \"server\": {\"accepted\": " + std::to_string(http.accepted) +
          ", \"requests\": " + std::to_string(http.requests) +
          ", \"parse_errors\": " + std::to_string(http.parse_errors) +
          ", \"deadline_closes\": " +
          std::to_string(http.deadline_closes) +
          ", \"rejected_over_capacity\": " +
          std::to_string(http.rejected_over_capacity) + "},\n";
  body += "  \"gauges\": {";
  bool first = true;
  if (snapshot != nullptr) {
    for (const auto& [key, value] : snapshot->gauges) {
      body += first ? "\n" : ",\n";
      first = false;
      body += "    \"" + JsonEscape(key) + "\": " + FormatDouble(value);
    }
  }
  body += first ? "},\n" : "\n  },\n";
  body += "  \"counters\": {";
  first = true;
  if (snapshot != nullptr) {
    for (const auto& [key, value] : snapshot->counters) {
      body += first ? "\n" : ",\n";
      first = false;
      body += "    \"" + JsonEscape(key) + "\": " + std::to_string(value);
    }
  }
  body += first ? "}\n" : "\n  }\n";
  body += "}\n";
  return net::HttpResponse::Json(200, std::move(body));
}

net::HttpResponse IntrospectionServer::DebugWorkload(
    const net::HttpRequest&) const {
  std::shared_ptr<const std::string> workload = hub_->workload_json();
  if (workload == nullptr) {
    return net::HttpResponse::Json(
        200, "{\"note\": \"no workload report published yet\"}\n");
  }
  return net::HttpResponse::Json(200, *workload + "\n");
}

net::HttpResponse IntrospectionServer::DebugRecorder(
    const net::HttpRequest&) const {
  const FlightRecorder* recorder = hub_->recorder();
  if (recorder == nullptr) {
    return net::HttpResponse::Text(404, "no flight recorder installed\n");
  }
  // Peek, not Drain: the scrape must never consume events a later
  // crash bundle or the exit-time sidecar needs.
  const FlightRecorder::Snapshot snapshot = recorder->Peek();
  std::string body;
  body.reserve(snapshot.events.size() * 96 + 128);
  body += "{\"recorder\": {\"events\": " +
          std::to_string(snapshot.events.size()) +
          ", \"dropped\": " + std::to_string(snapshot.dropped) +
          ", \"unregistered_drops\": " +
          std::to_string(snapshot.unregistered_drops) + "}}\n";
  for (const FlightRecorder::Event& event : snapshot.events) {
    body += "{\"nanos\": " + std::to_string(event.nanos) +
            ", \"thread\": " + std::to_string(event.thread) +
            ", \"type\": \"" + std::string(EventTypeName(event.type)) +
            "\", \"a\": " + std::to_string(event.a) +
            ", \"b\": " + std::to_string(event.b) + "}\n";
  }
  net::HttpResponse response = net::HttpResponse::Text(200, std::move(body));
  response.content_type = "application/x-ndjson";
  return response;
}

net::HttpResponse IntrospectionServer::DebugTrace(
    const net::HttpRequest& request) const {
  uint64_t doc_filter = 0;
  bool filtered = false;
  const std::string doc_param = request.QueryParam("doc");
  if (!doc_param.empty()) {
    char* end = nullptr;
    doc_filter = std::strtoull(doc_param.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return net::HttpResponse::Json(
          400, "{\"error\": \"doc must be an integer\"}\n");
    }
    filtered = true;
  }
  std::shared_ptr<const std::vector<IntrospectionHub::Span>> spans =
      hub_->spans();
  std::string body = "{\n  \"spans\": [";
  bool first = true;
  if (spans != nullptr) {
    for (const IntrospectionHub::Span& span : *spans) {
      if (filtered && span.document != doc_filter) continue;
      body += first ? "\n" : ",\n";
      first = false;
      body += "    {\"doc\": " + std::to_string(span.document) +
              ", \"engine\": \"" + JsonEscape(span.engine) +
              "\", \"span\": \"" + std::string(StageName(span.stage)) +
              "\", \"start_ns\": " + std::to_string(span.start_nanos) +
              ", \"dur_ns\": " + std::to_string(span.duration_nanos) + "}";
    }
  }
  body += first ? "]\n" : "\n  ]\n";
  body += "}\n";
  return net::HttpResponse::Json(200, std::move(body));
}

}  // namespace xpred::obs
