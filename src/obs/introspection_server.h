#ifndef XPRED_OBS_INTROSPECTION_SERVER_H_
#define XPRED_OBS_INTROSPECTION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace xpred::obs {

/// \brief Outcome of one health probe.
struct HealthCheckResult {
  bool ok = true;
  /// Human-readable state, quoted verbatim into the /healthz JSON.
  std::string detail;
};

/// \brief Thread-safety bridge between the single-threaded
/// observability owners (MetricsRegistry, WorkloadProfiler, Tracer —
/// none of them thread-safe) and the HTTP serving thread
/// (DESIGN.md §17).
///
/// The owner thread *publishes*: it renders the registry into an
/// immutable Prometheus text + MetricsSnapshot pair (PublishMetrics),
/// the profiler into a JSON string (PublishWorkload), and recent
/// tracer spans into owned records (PublishSpans); each publication
/// swaps a shared_ptr under a tiny mutex. HTTP handlers *copy the
/// pointer* under the same mutex and serialize outside it, so the
/// critical section is a pointer copy on both sides — a scraper
/// stalled mid-response can never hold up the filter hot path, and a
/// torn read is impossible by construction.
///
/// Health checks are registered before serving starts and probed from
/// the HTTP thread; every probe must therefore be thread-safe
/// (Watchdog::stats(), DurableSubscriptionStore::dead(), or reads of
/// this hub's own published snapshots all qualify).
class IntrospectionHub {
 public:
  /// Reported verbatim under /statusz "build".
  struct BuildInfo {
    std::string version = "dev";
    std::string build_type;
    std::string compiler;
  };

  /// Liveness gates /healthz (and /readyz); readiness gates /readyz
  /// only. An open circuit breaker is the canonical readiness-only
  /// failure: the process is healthy but refusing ingest.
  enum class CheckKind { kLiveness, kReadiness };

  struct CheckOutcome {
    std::string name;
    CheckKind kind = CheckKind::kLiveness;
    HealthCheckResult result;
  };

  /// One owned trace span (TraceSpan holds a string_view into
  /// engine-owned storage, which must not cross threads unpinned).
  struct Span {
    uint64_t document = 0;
    Stage stage = Stage::kParse;
    std::string engine;
    uint64_t start_nanos = 0;
    uint64_t duration_nanos = 0;
  };

  IntrospectionHub();

  /// \name Owner-thread publication
  ///@{
  /// Renders \p registry (Prometheus text + snapshot) and swaps the
  /// published pointers.
  void PublishMetrics(const MetricsRegistry& registry);
  /// PublishMetrics, rate-limited to one render per
  /// \p min_interval_ms; returns true when it published. Call per
  /// batch from the filter loop — the render cost is bounded to
  /// ~10 Hz no matter the batch rate.
  bool MaybePublishMetrics(const MetricsRegistry& registry,
                           uint64_t min_interval_ms = 100);
  void PublishWorkload(std::string workload_json);
  void PublishSpans(std::vector<Span> spans);
  ///@}

  /// \name Wiring (before serving starts)
  ///@{
  /// Recorder for /debug/recorder (not owned; Peek is thread-safe).
  void set_recorder(const FlightRecorder* recorder) {
    recorder_ = recorder;
  }
  void set_build_info(BuildInfo info) { build_info_ = std::move(info); }

  /// Registers a probe; \p probe runs on the HTTP thread and must be
  /// thread-safe.
  void AddCheck(std::string name, CheckKind kind,
                std::function<HealthCheckResult()> probe);
  /// Liveness probe over thread-safe Watchdog::stats(): fails while
  /// any worker is considered stalled (not owned).
  void AddWatchdogCheck(const Watchdog* watchdog);
  /// Readiness probe over the published xpred_breaker_state gauge:
  /// fails while any breaker reads open (1). Reads this hub's own
  /// snapshot, so it needs no reference to the (non-thread-safe)
  /// IngestGovernor.
  void AddBreakerCheck();
  ///@}

  /// \name HTTP-thread reads
  ///@{
  std::shared_ptr<const std::string> prometheus_text() const;
  std::shared_ptr<const MetricsSnapshot> metrics_snapshot() const;
  std::shared_ptr<const std::string> workload_json() const;
  std::shared_ptr<const std::vector<Span>> spans() const;
  const FlightRecorder* recorder() const { return recorder_; }
  const BuildInfo& build_info() const { return build_info_; }

  /// Probes every check of matching scope (liveness for /healthz,
  /// liveness + readiness for /readyz).
  std::vector<CheckOutcome> RunChecks(bool include_readiness) const;

  double uptime_seconds() const;
  uint64_t metrics_publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }
  /// Seconds since the last PublishMetrics; -1 before the first.
  double metrics_age_seconds() const;
  ///@}

 private:
  struct Check {
    std::string name;
    CheckKind kind;
    std::function<HealthCheckResult()> probe;
  };

  /// Guards only the shared_ptr swaps/copies below — never held
  /// across rendering or serialization.
  mutable std::mutex mu_;
  std::shared_ptr<const std::string> prometheus_text_;
  std::shared_ptr<const MetricsSnapshot> snapshot_;
  std::shared_ptr<const std::string> workload_json_;
  std::shared_ptr<const std::vector<Span>> spans_;

  /// Immutable once serving starts.
  std::vector<Check> checks_;
  const FlightRecorder* recorder_ = nullptr;
  BuildInfo build_info_;

  Stopwatch uptime_;
  std::atomic<uint64_t> publishes_{0};
  std::atomic<int64_t> last_publish_nanos_{-1};
};

/// \brief The introspection plane itself: a net::HttpServer serving
/// /metrics, /healthz, /readyz, /statusz, /debug/workload,
/// /debug/recorder, and /debug/trace off an IntrospectionHub
/// (DESIGN.md §17).
class IntrospectionServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port; read it back via port().
    uint16_t port = 0;
  };

  /// \p hub is not owned and must outlive the server.
  IntrospectionServer(IntrospectionHub* hub, const Options& options);
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  Status Start();
  void Stop();

  uint16_t port() const { return server_.port(); }
  const std::string& bind_address() const {
    return server_.bind_address();
  }
  net::HttpServer::Stats http_stats() const { return server_.stats(); }

 private:
  void Mount();

  net::HttpResponse Index(const net::HttpRequest& request) const;
  net::HttpResponse Metrics(const net::HttpRequest& request) const;
  net::HttpResponse Health(bool include_readiness) const;
  net::HttpResponse Statusz(const net::HttpRequest& request) const;
  net::HttpResponse DebugWorkload(const net::HttpRequest& request) const;
  net::HttpResponse DebugRecorder(const net::HttpRequest& request) const;
  net::HttpResponse DebugTrace(const net::HttpRequest& request) const;

  IntrospectionHub* hub_;
  net::Router router_;
  net::HttpServer server_;
};

}  // namespace xpred::obs

#endif  // XPRED_OBS_INTROSPECTION_SERVER_H_
