#ifndef XPRED_OBS_SCOPED_TIMER_H_
#define XPRED_OBS_SCOPED_TIMER_H_

#include <cstdint>

#include "common/stopwatch.h"
#include "obs/engine_instruments.h"

namespace xpred::obs {

/// \brief RAII stage timer: charges elapsed wall time to the current
/// stage of an EngineInstruments' per-document accumulator.
///
/// Replaces the old ad-hoc `Stopwatch watch; ...; stats_.x_micros +=
/// watch.ElapsedMicros()` plumbing. A single timer walks a pipeline by
/// rotating through its stages; the destructor charges the last one:
///
/// \code
///   obs::ScopedTimer timer(&inst(), obs::Stage::kEncode);
///   ... encode ...
///   timer.Rotate(obs::Stage::kPredicate);
///   ... match predicates ...
/// \endcode
class ScopedTimer {
 public:
  ScopedTimer(EngineInstruments* instruments, Stage stage)
      : instruments_(instruments), stage_(stage) {}
  /// Worker-thread variant: when \p instruments is null (worker
  /// contexts must not touch the shared registry), elapsed time is
  /// charged to \p spans instead — a worker-local StageSpanBuffer the
  /// batch owner merges and emits after the batch. Both null makes the
  /// timer a no-op, as before.
  ScopedTimer(EngineInstruments* instruments, StageSpanBuffer* spans,
              Stage stage)
      : instruments_(instruments), spans_(spans), stage_(stage) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Charges the elapsed time to the current stage and switches to
  /// \p next.
  void Rotate(Stage next) {
    Charge();
    stage_ = next;
  }

  /// Charges the elapsed time to the current stage and restarts the
  /// watch. Call explicitly when the accumulator must be complete
  /// before the timer's scope ends (e.g. ahead of EndDocument); the
  /// destructor then only charges the nanoseconds elapsed since.
  void Charge() {
    if (instruments_ != nullptr) {
      instruments_->AddStageNanos(
          stage_, static_cast<uint64_t>(watch_.ElapsedNanos()));
      watch_.Reset();
    } else if (spans_ != nullptr) {
      spans_->AddStageNanos(stage_,
                            static_cast<uint64_t>(watch_.ElapsedNanos()));
      watch_.Reset();
    }
  }

  ~ScopedTimer() { Charge(); }

 private:
  EngineInstruments* instruments_;
  StageSpanBuffer* spans_ = nullptr;
  Stage stage_;
  Stopwatch watch_;
};

}  // namespace xpred::obs

#endif  // XPRED_OBS_SCOPED_TIMER_H_
