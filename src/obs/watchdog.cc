#include "obs/watchdog.h"

#include <chrono>

#include "obs/crash_handler.h"

namespace xpred::obs {

Watchdog::Watchdog(size_t workers, const Options& options)
    : options_(options) {
  slots_.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  scan_state_.resize(workers);
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::BeginWork(size_t worker) {
  if (worker >= slots_.size()) return;
  slots_[worker]->beats.fetch_add(1, std::memory_order_relaxed);
  slots_[worker]->busy.store(true, std::memory_order_release);
}

void Watchdog::EndWork(size_t worker) {
  if (worker >= slots_.size()) return;
  slots_[worker]->busy.store(false, std::memory_order_release);
  slots_[worker]->beats.fetch_add(1, std::memory_order_relaxed);
}

void Watchdog::ScanOnce() {
  const uint64_t now = static_cast<uint64_t>(epoch_.ElapsedNanos());
  const uint64_t stall_nanos = options_.stall_timeout_ms * 1000000ull;
  FlightRecorder* recorder = options_.recorder != nullptr
                                 ? options_.recorder
                                 : FlightRecorder::Installed();
  uint64_t busy = 0;
  uint64_t stalled = 0;
  for (size_t w = 0; w < slots_.size(); ++w) {
    ScanState& state = scan_state_[w];
    if (!slots_[w]->busy.load(std::memory_order_acquire)) {
      state.stalled = false;
      continue;
    }
    ++busy;
    const uint64_t beat = slots_[w]->beats.load(std::memory_order_relaxed);
    if (beat != state.last_beat || state.last_change_nanos == 0) {
      state.last_beat = beat;
      state.last_change_nanos = now;
      state.stalled = false;
      continue;
    }
    const uint64_t silence = now - state.last_change_nanos;
    if (silence < stall_nanos) continue;
    state.stalled = true;
    ++stalled;
    if (state.reported_beat == beat) continue;  // Already reported.
    state.reported_beat = beat;
    stalls_.fetch_add(1, std::memory_order_relaxed);
    last_stall_nanos_.store(now, std::memory_order_relaxed);
    if (recorder != nullptr) {
      recorder->Record(EventType::kStall, w, silence);
    }
    if (!options_.dump_path.empty() &&
        dumps_.load(std::memory_order_relaxed) == 0) {
      // One bundle per watchdog lifetime: the first stall episode is
      // the interesting one, and repeated dumps would overwrite it.
      dumps_.fetch_add(1, std::memory_order_relaxed);
      (void)CrashHandler::WriteBundle(options_.dump_path,
                                      DumpReason::kWatchdog, recorder,
                                      options_.registry);
    }
  }
  stalled_now_.store(stalled, std::memory_order_relaxed);
  scans_.fetch_add(1, std::memory_order_relaxed);
  if (recorder != nullptr) {
    recorder->Record(EventType::kWatchdogScan, busy, stalled);
  }
}

void Watchdog::ThreadMain() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_interval_ms));
    if (stop_requested_) break;
    lock.unlock();
    ScanOnce();
    lock.lock();
  }
}

void Watchdog::Start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread(&Watchdog::ThreadMain, this);
}

void Watchdog::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

Watchdog::Stats Watchdog::stats() const {
  Stats stats;
  stats.scans = scans_.load(std::memory_order_relaxed);
  stats.stalls = stalls_.load(std::memory_order_relaxed);
  stats.dumps = dumps_.load(std::memory_order_relaxed);
  stats.stalled_now = stalled_now_.load(std::memory_order_relaxed);
  stats.last_stall_nanos = last_stall_nanos_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace xpred::obs
