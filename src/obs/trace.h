#ifndef XPRED_OBS_TRACE_H_
#define XPRED_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string_view>
#include <vector>

#include "common/stopwatch.h"

namespace xpred::obs {

/// \brief Per-document filtering stages, in pipeline order. This is
/// both the trace-span taxonomy and the per-stage metrics key; it
/// mirrors the paper's §6.5 cost breakdown (parse/encode = document
/// preparation, predicate = §4.1 predicate matching, occurrence =
/// §4.2 expression matching, verify = selection-postponed filter
/// verification, collect = result collection).
enum class Stage : uint8_t {
  kParse = 0,
  kEncode,
  kPredicate,
  kOccurrence,
  kVerify,
  kCollect,
};
inline constexpr size_t kStageCount = 6;

/// Stable lowercase stage name ("parse", "encode", ...).
std::string_view StageName(Stage stage);

/// \brief One aggregated per-document stage span.
///
/// Spans are aggregates: an engine accumulates each stage's time over
/// the whole document and emits one span per touched stage when the
/// document ends, in Stage order (stage work interleaves per path, so
/// start offsets are synthetic: document start plus the preceding
/// stages' durations).
struct TraceSpan {
  /// 1-based document sequence number (per tracer).
  uint64_t document = 0;
  Stage stage = Stage::kParse;
  /// Engine name; references storage owned by the engine's
  /// instruments, valid while the engine is alive.
  std::string_view engine;
  /// Nanoseconds since the tracer was created.
  uint64_t start_nanos = 0;
  uint64_t duration_nanos = 0;
};

/// Span consumer. Implementations must tolerate Emit on every
/// document; Flush is called when the producer wants buffered output
/// durable.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const TraceSpan& span) = 0;
  virtual void Flush() {}
};

/// Discards every span (tracing disabled but wired).
class NullSink : public TraceSink {
 public:
  void Emit(const TraceSpan& span) override { (void)span; }
};

/// Keeps the most recent \p capacity spans in memory (oldest evicted
/// first). Intended for tests and in-process inspection.
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(size_t capacity = 4096);

  void Emit(const TraceSpan& span) override;

  /// Buffered spans, oldest first; leaves the buffer empty.
  std::vector<TraceSpan> Drain();
  size_t size() const { return size_; }
  /// Spans evicted because the buffer was full.
  uint64_t dropped() const { return dropped_; }

 private:
  std::vector<TraceSpan> spans_;
  size_t capacity_;
  size_t next_ = 0;
  size_t size_ = 0;
  uint64_t dropped_ = 0;
};

/// Writes one JSON object per span, newline-delimited:
///   {"doc":1,"engine":"basic-pc-ap","span":"predicate",
///    "start_ns":123,"dur_ns":456}
class JsonlSink : public TraceSink {
 public:
  /// Writes through \p out (not owned; must outlive the sink).
  explicit JsonlSink(std::ostream* out) : out_(out) {}
  /// Opens \p path for writing; check ok() before use.
  explicit JsonlSink(const std::string& path);

  bool ok() const { return out_ != nullptr && out_->good(); }

  void Emit(const TraceSpan& span) override;
  void Flush() override;

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_ = nullptr;
};

/// \brief Worker-local per-stage duration accumulator.
///
/// The Tracer and its sinks are deliberately not thread-safe (spans
/// normally flow from the single calling thread); ParallelFilter
/// worker threads therefore must never call EmitSpan directly. Each
/// worker instead charges stage time here — plain array adds, no
/// locks, no allocation — and the batch owner merges the buffers and
/// emits one aggregate span per touched stage through the tracer from
/// the calling thread after the batch (see DESIGN.md §13).
class StageSpanBuffer {
 public:
  void AddStageNanos(Stage stage, uint64_t nanos) {
    nanos_[static_cast<size_t>(stage)] += nanos;
    touched_[static_cast<size_t>(stage)] = true;
  }

  void Merge(const StageSpanBuffer& other) {
    for (size_t s = 0; s < kStageCount; ++s) {
      if (!other.touched_[s]) continue;
      nanos_[s] += other.nanos_[s];
      touched_[s] = true;
    }
  }

  bool any_touched() const {
    for (bool t : touched_) {
      if (t) return true;
    }
    return false;
  }
  uint64_t stage_nanos(Stage stage) const {
    return nanos_[static_cast<size_t>(stage)];
  }

  void Reset() {
    nanos_.fill(0);
    touched_.fill(false);
  }

 private:
  friend class Tracer;
  std::array<uint64_t, kStageCount> nanos_{};
  std::array<bool, kStageCount> touched_{};
};

/// \brief Hands per-document spans from engines to a sink and owns the
/// document sequence numbering plus the trace clock. Attach one to an
/// engine with FilterEngine::set_tracer(); multiple engines may share
/// a tracer (spans carry the engine label).
class Tracer {
 public:
  /// \p sink is not owned and must outlive the tracer.
  explicit Tracer(TraceSink* sink) : sink_(sink) {}

  /// Starts the next document; returns its 1-based sequence number.
  uint64_t BeginDocument() { return ++document_; }
  uint64_t current_document() const { return document_; }

  /// Nanoseconds since the tracer was created (the span time base).
  uint64_t NowNanos() const {
    return static_cast<uint64_t>(epoch_.ElapsedNanos());
  }

  void EmitSpan(std::string_view engine, Stage stage, uint64_t start_nanos,
                uint64_t duration_nanos) {
    TraceSpan span;
    span.document = document_;
    span.stage = stage;
    span.engine = engine;
    span.start_nanos = start_nanos;
    span.duration_nanos = duration_nanos;
    sink_->Emit(span);
  }

  /// Emits one span per touched stage of \p spans against the current
  /// document, with synthetic start offsets (the
  /// EngineInstruments::EndDocument convention: document start plus
  /// the preceding stages' durations), then resets the buffer. Must be
  /// called from the thread that owns this tracer.
  void EmitStageBuffer(std::string_view engine, StageSpanBuffer* spans,
                       uint64_t start_nanos) {
    uint64_t offset = start_nanos;
    for (size_t s = 0; s < kStageCount; ++s) {
      if (!spans->touched_[s]) continue;
      EmitSpan(engine, static_cast<Stage>(s), offset, spans->nanos_[s]);
      offset += spans->nanos_[s];
    }
    spans->Reset();
  }

  void Flush() { sink_->Flush(); }
  TraceSink* sink() const { return sink_; }

 private:
  TraceSink* sink_;
  uint64_t document_ = 0;
  Stopwatch epoch_;
};

}  // namespace xpred::obs

#endif  // XPRED_OBS_TRACE_H_
