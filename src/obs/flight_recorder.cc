#include "obs/flight_recorder.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/hash.h"

namespace xpred::obs {

namespace {

/// Unique per-recorder-instance id, so a thread's cached registration
/// can never alias a different recorder constructed at the same
/// address (ABA on install/uninstall cycles).
std::atomic<uint64_t> g_next_recorder_id{1};

struct TlsRegistration {
  uint64_t recorder_id = 0;
  size_t slot = 0;
  bool overflow = false;
};
thread_local TlsRegistration t_registration;

/// common::FaultInjector observer: fired faults become kFaultInjected
/// events (site carried as its FNV-1a hash; the faultsite registry is
/// canonical, so `xpred_cli diagnose` reverses the hash offline).
void RecordFaultEvent(std::string_view site, uint64_t visit) {
  FlightRecorder* recorder = FlightRecorder::Installed();
  if (recorder != nullptr) {
    recorder->Record(EventType::kFaultInjected, Fnv1a(site), visit);
  }
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kNone:
      return "none";
    case EventType::kDocBegin:
      return "doc_begin";
    case EventType::kDocEnd:
      return "doc_end";
    case EventType::kStage:
      return "stage";
    case EventType::kBatchBegin:
      return "batch_begin";
    case EventType::kBatchEnd:
      return "batch_end";
    case EventType::kQuarantine:
      return "quarantine";
    case EventType::kRetry:
      return "retry";
    case EventType::kBreaker:
      return "breaker";
    case EventType::kShed:
      return "shed";
    case EventType::kSteal:
      return "steal";
    case EventType::kPark:
      return "park";
    case EventType::kBudgetExhausted:
      return "budget_exhausted";
    case EventType::kFaultInjected:
      return "fault_injected";
    case EventType::kStall:
      return "stall";
    case EventType::kWatchdogScan:
      return "watchdog_scan";
    case EventType::kDump:
      return "dump";
    case EventType::kEpochPublish:
      return "epoch_publish";
    case EventType::kEpochRetire:
      return "epoch_retire";
    case EventType::kWalRotate:
      return "wal_rotate";
    case EventType::kSnapshotWrite:
      return "snapshot_write";
    case EventType::kRecovery:
      return "recovery";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(const Options& options)
    : capacity_(NextPowerOfTwo(std::max<size_t>(options.events_per_thread,
                                                16))),
      mask_(capacity_ - 1),
      max_threads_(std::max<size_t>(options.max_threads, 1)) {
  id_ = g_next_recorder_id.fetch_add(1, std::memory_order_relaxed);
  buffers_.reserve(max_threads_);
  for (size_t t = 0; t < max_threads_; ++t) {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->slots = std::vector<Slot>(capacity_);
    buffers_.push_back(std::move(buffer));
  }
  drained_upto_.assign(max_threads_, 0);
}

FlightRecorder::~FlightRecorder() {
  // Installing a recorder and destroying it while installed is a
  // caller bug; be defensive so tests that forget to uninstall do not
  // leave a dangling global.
  FlightRecorder* expected = this;
  detail::g_flight_recorder.compare_exchange_strong(
      expected, nullptr, std::memory_order_acq_rel);
}

FlightRecorder::ThreadBuffer* FlightRecorder::BufferForThisThread() {
  TlsRegistration& reg = t_registration;
  if (reg.recorder_id == id_) {
    return reg.overflow ? nullptr : buffers_[reg.slot].get();
  }
  // Cold path: first Record() from this thread against this recorder.
  const size_t slot = next_thread_.fetch_add(1, std::memory_order_relaxed);
  reg.recorder_id = id_;
  if (slot >= max_threads_) {
    reg.overflow = true;
    return nullptr;
  }
  reg.overflow = false;
  reg.slot = slot;
  return buffers_[slot].get();
}

void FlightRecorder::Record(EventType type, uint64_t a, uint64_t b) {
  ThreadBuffer* buffer = BufferForThisThread();
  if (buffer == nullptr) {
    unregistered_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const uint64_t n = buffer->head.load(std::memory_order_relaxed);
  Slot& slot = buffer->slots[n & mask_];
  // Seqlock write: mark in-progress (odd), store the payload, publish
  // the even sequence carrying the write index.
  slot.seq.store(2 * n + 1, std::memory_order_relaxed);
  slot.time_type.store((NowNanos() << 16) |
                           static_cast<uint64_t>(type),
                       std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.seq.store(2 * (n + 1), std::memory_order_release);
  buffer->head.store(n + 1, std::memory_order_release);
}

void FlightRecorder::AnnotateDocument(uint64_t fingerprint,
                                      uint64_t doc_seq) {
  ThreadBuffer* buffer = BufferForThisThread();
  if (buffer == nullptr) return;
  buffer->doc_fingerprint.store(fingerprint, std::memory_order_relaxed);
  buffer->doc_seq.store(doc_seq, std::memory_order_relaxed);
}

size_t FlightRecorder::registered_threads() const {
  return std::min(next_thread_.load(std::memory_order_acquire),
                  max_threads_);
}

uint64_t FlightRecorder::thread_written(size_t slot) const {
  return buffers_[slot]->head.load(std::memory_order_acquire);
}

bool FlightRecorder::ReadEventRaw(size_t slot, size_t index,
                                  Event* out) const {
  const Slot& s = buffers_[slot]->slots[index & mask_];
  const uint64_t s1 = s.seq.load(std::memory_order_acquire);
  if (s1 == 0 || (s1 & 1) != 0) return false;
  const uint64_t time_type = s.time_type.load(std::memory_order_relaxed);
  const uint64_t a = s.a.load(std::memory_order_relaxed);
  const uint64_t b = s.b.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.seq.load(std::memory_order_relaxed) != s1) return false;  // Torn.
  out->nanos = time_type >> 16;
  out->thread = static_cast<uint32_t>(slot);
  out->type = static_cast<EventType>(time_type & 0xffff);
  out->a = a;
  out->b = b;
  return true;
}

FlightRecorder::ThreadDoc FlightRecorder::ReadThreadDoc(size_t slot) const {
  ThreadDoc doc;
  doc.thread = static_cast<uint32_t>(slot);
  doc.fingerprint =
      buffers_[slot]->doc_fingerprint.load(std::memory_order_relaxed);
  doc.doc_seq = buffers_[slot]->doc_seq.load(std::memory_order_relaxed);
  return doc;
}

void FlightRecorder::CollectThread(size_t t, uint64_t from, uint64_t head,
                                   Snapshot* out) const {
  for (uint64_t i = from; i < head; ++i) {
    Event event;
    const Slot& s = buffers_[t]->slots[i & mask_];
    const uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 != 2 * (i + 1)) {
      // Either overwritten by a newer event (lapped during this
      // walk) or an in-progress write; both count as dropped from
      // this window.
      ++out->dropped;
      continue;
    }
    event.nanos =
        s.time_type.load(std::memory_order_relaxed) >> 16;
    event.type = static_cast<EventType>(
        s.time_type.load(std::memory_order_relaxed) & 0xffff);
    event.a = s.a.load(std::memory_order_relaxed);
    event.b = s.b.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != s1) {
      ++out->dropped;  // Torn under our feet.
      continue;
    }
    event.thread = static_cast<uint32_t>(t);
    out->events.push_back(event);
  }
}

FlightRecorder::Snapshot FlightRecorder::Drain() {
  Snapshot out;
  const size_t threads = registered_threads();
  for (size_t t = 0; t < threads; ++t) {
    const uint64_t head = thread_written(t);
    const uint64_t oldest = head > capacity_ ? head - capacity_ : 0;
    if (oldest > drained_upto_[t]) {
      out.dropped += oldest - drained_upto_[t];
    }
    CollectThread(t, std::max(oldest, drained_upto_[t]), head, &out);
    drained_upto_[t] = head;
    out.thread_docs.push_back(ReadThreadDoc(t));
  }
  out.unregistered_drops =
      unregistered_drops_.exchange(0, std::memory_order_relaxed);
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const Event& x, const Event& y) {
                     return x.nanos < y.nanos;
                   });
  return out;
}

FlightRecorder::Snapshot FlightRecorder::Peek() const {
  Snapshot out;
  const size_t threads = registered_threads();
  for (size_t t = 0; t < threads; ++t) {
    const uint64_t head = thread_written(t);
    const uint64_t oldest = head > capacity_ ? head - capacity_ : 0;
    CollectThread(t, oldest, head, &out);
    out.thread_docs.push_back(ReadThreadDoc(t));
  }
  // Report without resetting: the exit-time sidecar still owns these.
  out.unregistered_drops =
      unregistered_drops_.load(std::memory_order_relaxed);
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const Event& x, const Event& y) {
                     return x.nanos < y.nanos;
                   });
  return out;
}

void FlightRecorder::Install(FlightRecorder* recorder) {
  detail::g_flight_recorder.store(recorder, std::memory_order_release);
#ifndef XPRED_DISABLE_FAULT_INJECTION
  xpred::detail::g_fault_observer =
      recorder != nullptr ? &RecordFaultEvent : nullptr;
#endif
}

}  // namespace xpred::obs
