#ifndef XPRED_OBS_WATCHDOG_H_
#define XPRED_OBS_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace xpred::obs {

/// \brief Stall detector for the parallel pipeline (DESIGN.md §14).
///
/// Each worker publishes a heartbeat (a relaxed atomic counter bump)
/// from its task loop; the watchdog thread polls the heartbeats and
/// flags any worker that is marked busy but whose counter has not
/// moved for longer than the stall timeout. A stall is reported once
/// per stuck heartbeat value (edge-triggered): it records a kStall
/// flight-recorder event, bumps the internal stall counter, and — when
/// a dump path is configured — writes one voluntary diagnostic bundle
/// for the first stall episode via CrashHandler::WriteBundle.
///
/// Thread-safety: Beat / BeginWork / EndWork are safe from any thread
/// (wait-free). stats() is safe from any thread. Start/Stop must come
/// from one owner thread. The watchdog deliberately does NOT touch a
/// MetricsRegistry from its own thread (registries are not
/// thread-safe); owners read stats() and publish xpred_watchdog_*
/// metrics from the thread that owns the registry.
class Watchdog {
 public:
  struct Options {
    /// Scan cadence of the watchdog thread.
    uint64_t poll_interval_ms = 50;
    /// Heartbeat silence that counts as a stall.
    uint64_t stall_timeout_ms = 1000;
    /// When non-empty, the first stall episode writes a voluntary
    /// diagnostic bundle here.
    std::string dump_path;
    /// Recorder for kStall / kWatchdogScan events; when null, the
    /// process-global FlightRecorder::Installed() is used per scan.
    FlightRecorder* recorder = nullptr;
    /// Snapshot source for voluntary dumps only (never touched
    /// outside WriteBundle). May be null.
    const MetricsRegistry* registry = nullptr;
  };

  /// Monotonic totals since construction, for owner-thread metric
  /// publication (xpred_watchdog_scans_total, _stalls_total,
  /// _dumps_total, and the xpred_watchdog_stalled_workers gauge).
  struct Stats {
    uint64_t scans = 0;
    uint64_t stalls = 0;
    uint64_t dumps = 0;
    uint64_t stalled_now = 0;
    /// Watchdog-epoch nanos of the most recent stall report
    /// (0 = never stalled) — xpred_watchdog_last_stall_ns.
    uint64_t last_stall_nanos = 0;
  };

  Watchdog(size_t workers, const Options& options);
  /// Stops the scan thread if still running.
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Spawns the scan thread. Idempotent.
  void Start();
  /// Joins the scan thread. Idempotent; also called by the destructor.
  void Stop();

  /// Worker heartbeat: call from inside long-running work loops.
  void Beat(size_t worker) {
    if (worker < slots_.size()) {
      slots_[worker]->beats.fetch_add(1, std::memory_order_relaxed);
    }
  }
  /// Marks \p worker as executing work (watched) and beats once.
  void BeginWork(size_t worker);
  /// Marks \p worker idle (not watched).
  void EndWork(size_t worker);

  /// One synchronous scan on the caller's thread; what the scan
  /// thread runs every poll interval. Exposed for deterministic tests.
  void ScanOnce();

  Stats stats() const;
  size_t workers() const { return slots_.size(); }

 private:
  struct alignas(64) WorkerSlot {
    std::atomic<uint64_t> beats{0};
    std::atomic<bool> busy{false};
  };

  /// Scan-thread-only per-worker bookkeeping.
  struct ScanState {
    uint64_t last_beat = 0;
    uint64_t last_change_nanos = 0;
    /// Beat value whose stall has already been reported (edge
    /// trigger); ~0 when none.
    uint64_t reported_beat = ~uint64_t{0};
    bool stalled = false;
  };

  void ThreadMain();

  const Options options_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<ScanState> scan_state_;
  Stopwatch epoch_;

  std::atomic<uint64_t> scans_{0};
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> dumps_{0};
  std::atomic<uint64_t> stalled_now_{0};
  std::atomic<uint64_t> last_stall_nanos_{0};

  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
};

}  // namespace xpred::obs

#endif  // XPRED_OBS_WATCHDOG_H_
