#ifndef XPRED_OBS_CRASH_HANDLER_H_
#define XPRED_OBS_CRASH_HANDLER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace xpred::obs {

/// Why a diagnostic bundle was written. Values are stable wire
/// constants (they ride in kDump events and in the bundle JSON).
enum class DumpReason : uint16_t {
  /// A fatal signal (SIGSEGV / SIGBUS / SIGABRT) was caught.
  kSignal = 1,
  /// std::terminate was reached (unhandled exception, etc.).
  kTerminate = 2,
  /// The watchdog requested a voluntary dump for a stalled worker.
  kWatchdog = 3,
  /// Explicit WriteBundle call (tests, operator request).
  kManual = 4,
};

/// Stable lowercase reason name ("signal", "watchdog", ...).
std::string_view DumpReasonName(DumpReason reason);

/// \brief Async-signal-safe crash-time diagnostics (DESIGN.md §14).
///
/// Install() pre-opens the bundle file, pre-builds a flat list of
/// metric pointers from the registry, and hooks SIGSEGV / SIGBUS /
/// SIGABRT plus std::terminate. When the process dies, the handler
/// writes a JSON diagnostic bundle — the flight recorder's events and
/// per-thread in-flight document fingerprints, plus a point-in-time
/// metrics snapshot — to the pre-opened fd using nothing but write()
/// and manual integer formatting (no malloc, no stdio, no locks), then
/// restores the default disposition and re-raises so the exit status
/// is unchanged.
///
/// The recorder and registry are borrowed, not owned; both must
/// outlive the installation. The registry's *registrations* must not
/// change while installed (values may change freely — the handler
/// reads the plain counter/gauge words at crash time; registering new
/// metrics after Install would reallocate family nodes under the
/// handler's pre-built pointer list).
///
/// Exactly one installation can be active per process. Install
/// replaces any previous one.
class CrashHandler {
 public:
  struct Options {
    /// Bundle destination, opened (O_CREAT | O_TRUNC) at install time.
    /// Removed again by Uninstall() if no dump was written.
    std::string bundle_path;
    /// Drained into the bundle's "recorder" section. May be null.
    FlightRecorder* recorder = nullptr;
    /// Snapshot into the bundle's "metrics" section. May be null.
    const MetricsRegistry* registry = nullptr;
  };

  /// Hooks the fatal-signal and terminate paths. Fails (without
  /// installing) when the bundle file cannot be created.
  static Status Install(const Options& options);

  /// Restores the previous signal dispositions and terminate handler.
  /// Deletes the pre-opened bundle file when no dump was written (so
  /// clean runs leave no empty bundles behind). No-op when nothing is
  /// installed.
  static void Uninstall();

  static bool Installed();

  /// Writes a voluntary diagnostic bundle for \p reason to a fresh
  /// file at \p path (the pre-opened crash fd is untouched). Unlike
  /// the crash path this may allocate; it still reads the recorder
  /// through the non-consuming raw API, so a later Drain() sees the
  /// same events. Used by the watchdog and by tests.
  static Status WriteBundle(const std::string& path, DumpReason reason,
                            FlightRecorder* recorder,
                            const MetricsRegistry* registry);
};

}  // namespace xpred::obs

#endif  // XPRED_OBS_CRASH_HANDLER_H_
