#ifndef XPRED_OBS_FLIGHT_RECORDER_H_
#define XPRED_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/stopwatch.h"

namespace xpred::obs {

/// \brief Flight-recorder event taxonomy (DESIGN.md §14).
///
/// Every instrumentation point in the pipeline records one of these.
/// Values are stable wire constants: they appear verbatim in crash
/// bundles, so renumbering breaks `xpred_cli diagnose` on old bundles.
/// Append new types at the end and teach EventTypeName about them.
enum class EventType : uint16_t {
  kNone = 0,
  /// Engine document window opened. a = 1-based document sequence
  /// number, b = document fingerprint (0 when unknown).
  kDocBegin = 1,
  /// Engine document window closed. a = document sequence number,
  /// b = summed stage nanos charged to the document.
  kDocEnd = 2,
  /// One pipeline stage's aggregate for the finished document.
  /// a = obs::Stage value, b = accumulated nanoseconds.
  kStage = 3,
  /// ParallelFilter::FilterBatch entered. a = documents, b = tasks.
  kBatchBegin = 4,
  /// FilterBatch returning. a = documents, b = first-error StatusCode
  /// (0 = OK).
  kBatchEnd = 5,
  /// IngestGovernor quarantined a document. a = stream doc index,
  /// b = StatusCode of the condemning failure.
  kQuarantine = 6,
  /// IngestGovernor retrying a transient failure. a = stream doc
  /// index, b = retry attempt (1-based).
  kRetry = 7,
  /// Circuit-breaker state transition. a = new BreakerState value,
  /// b = consecutive failures at the transition.
  kBreaker = 8,
  /// Breaker shed a document unexamined. a = stream doc index, b = 0.
  kShed = 9,
  /// Work-steal succeeded. a = thief worker, b = victim worker.
  kSteal = 10,
  /// Worker went dry and is parked/spinning. a = worker, b = failed
  /// steal probes in the current dry streak when the event fired.
  kPark = 11,
  /// A worker task died on its ExecBudget. a = task index,
  /// b = StatusCode (kResourceExhausted or kDeadlineExceeded).
  kBudgetExhausted = 12,
  /// common::FaultInjector fired a rule. a = FNV-1a hash of the site
  /// name (reversible against the faultsite registry), b = visit.
  kFaultInjected = 13,
  /// Watchdog detected a stalled worker. a = worker, b = nanoseconds
  /// of heartbeat silence.
  kStall = 14,
  /// Watchdog completed a scan. a = busy workers, b = stalled workers.
  kWatchdogScan = 15,
  /// A diagnostic bundle was written. a = reason ordinal (see
  /// crash_handler.h), b = 0.
  kDump = 16,
  /// IndexEpochManager published a new epoch. a = new epoch number,
  /// b = backlog operations replayed into it.
  kEpochPublish = 17,
  /// An epoch's side finished its grace period and was reclaimed for
  /// rebuilding. a = retired epoch number, b = scheduler yields spent
  /// waiting for readers to unpin (0 = already quiescent).
  kEpochRetire = 18,
  /// SubscriptionWal opened a fresh segment (rotation or checkpoint
  /// compaction). a = base sequence number of the new segment,
  /// b = segments created by this writer so far.
  kWalRotate = 19,
  /// SnapshotWriter landed a checkpoint. a = checkpointed epoch,
  /// b = snapshot bytes.
  kSnapshotWrite = 20,
  /// DurableSubscriptionStore finished crash recovery. a = WAL records
  /// replayed, b = torn-tail bytes truncated.
  kRecovery = 21,
};

/// Stable lowercase event-type name ("doc_begin", "steal", ...), the
/// spelling used in bundles and timelines. "unknown" for bad values.
std::string_view EventTypeName(EventType type);

/// \brief Always-on, bounded-memory, lock-free event journal for
/// post-mortem diagnosis (DESIGN.md §14).
///
/// One fixed-size ring of binary events per writer thread. A thread
/// registers itself on its first Record() (cold; a single atomic slot
/// grab) and thereafter appends with a handful of relaxed atomic
/// stores — no locks, no allocation, wait-free. Each slot is a
/// seqlock: readers (the drain path, the crash handler) detect and
/// skip events they raced with instead of observing torn words, so the
/// recorder may be drained while workers are writing.
///
/// Events are 4 machine words: a timestamp (nanoseconds since the
/// recorder's epoch), the event type, and two payload words whose
/// meaning the EventType documents. The ring overwrites oldest-first;
/// overwritten events are counted, never silently lost (`dropped` in
/// Snapshot).
///
/// Installation mirrors common::FaultInjector: `Install()` publishes a
/// process-global recorder consulted by the XPRED_RECORD_EVENT macro,
/// which compiles to a single null test when nothing is installed and
/// to nothing at all under -DXPRED_NO_FLIGHT_RECORDER.
///
/// Thread-safety: Record / AnnotateDocument are safe from any thread.
/// Drain may run concurrently with writers (events being written race
/// into the next drain or are counted dropped). Install/Uninstall and
/// destruction must not race with writers.
class FlightRecorder {
 public:
  struct Options {
    /// Ring capacity per writer thread, in events (rounded up to a
    /// power of two; 32 bytes/event).
    size_t events_per_thread = 4096;
    /// Writer threads that can register; later threads' events are
    /// counted in Snapshot::unregistered_drops.
    size_t max_threads = 32;
  };

  /// One decoded event.
  struct Event {
    /// Nanoseconds since the recorder's construction.
    uint64_t nanos = 0;
    /// Registration slot of the writing thread.
    uint32_t thread = 0;
    EventType type = EventType::kNone;
    uint64_t a = 0;
    uint64_t b = 0;
  };

  /// Per-thread in-flight document annotation, for crash bundles.
  struct ThreadDoc {
    uint32_t thread = 0;
    uint64_t fingerprint = 0;
    uint64_t doc_seq = 0;
  };

  struct Snapshot {
    /// Events since the previous Drain(), merged across threads and
    /// sorted by nanos ascending.
    std::vector<Event> events;
    /// Events overwritten before they could be drained. Resets with
    /// each drain (the counter covers the drained window only).
    uint64_t dropped = 0;
    /// Events lost because their thread found all slots taken.
    uint64_t unregistered_drops = 0;
    /// Last document annotation of every registered thread.
    std::vector<ThreadDoc> thread_docs;
  };

  explicit FlightRecorder(const Options& options);
  FlightRecorder() : FlightRecorder(Options{}) {}
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event from the calling thread. Wait-free after the
  /// thread's first call.
  void Record(EventType type, uint64_t a, uint64_t b);

  /// Publishes the calling thread's in-flight document (fingerprint +
  /// engine-local sequence number) for crash bundles.
  void AnnotateDocument(uint64_t fingerprint, uint64_t doc_seq);

  /// Drains every event recorded since the previous Drain() call.
  /// Safe while writers are active: racing events are either skipped
  /// (picked up by the next drain) or counted in `dropped`.
  Snapshot Drain();

  /// Non-destructive read of everything currently live in the rings
  /// (the full window, not just the undrained suffix). Unlike Drain it
  /// advances no cursor and resets no drop counter, so a `/debug/
  /// recorder` scrape never consumes events a later crash bundle or
  /// exit-time Drain needs. Touches only atomics — safe from any
  /// thread, including concurrently with writers and with Drain.
  Snapshot Peek() const;

  /// Nanoseconds since construction — the event time base.
  uint64_t NowNanos() const {
    return static_cast<uint64_t>(epoch_.ElapsedNanos());
  }

  /// \name Raw access (async-signal-safe, allocation-free)
  ///
  /// The crash handler walks the rings with these from a signal
  /// context. ReadEventRaw returns false for empty or torn slots.
  ///@{
  size_t max_threads() const { return max_threads_; }
  size_t events_per_thread() const { return capacity_; }
  /// Threads registered so far (clamped to max_threads()).
  size_t registered_threads() const;
  /// Events the thread in \p slot has written in total.
  uint64_t thread_written(size_t slot) const;
  bool ReadEventRaw(size_t slot, size_t index, Event* out) const;
  ThreadDoc ReadThreadDoc(size_t slot) const;
  uint64_t unregistered_drops() const {
    return unregistered_drops_.load(std::memory_order_relaxed);
  }
  ///@}

  /// Installs \p recorder (not owned; nullptr uninstalls) as the
  /// process-global recorder consulted by XPRED_RECORD_EVENT. Also
  /// wires the common::FaultInjector observer hook so fired faults
  /// are recorded as kFaultInjected events.
  static void Install(FlightRecorder* recorder);
  static FlightRecorder* Installed();

 private:
  /// One seqlock slot. seq: 0 = never written, odd = write in
  /// progress, even 2*(n+1) = stable event with write index n.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    /// nanos << 16 | type.
    std::atomic<uint64_t> time_type{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
  };

  struct alignas(64) ThreadBuffer {
    /// Total events written by the owning thread (monotonic).
    std::atomic<uint64_t> head{0};
    std::atomic<uint64_t> doc_fingerprint{0};
    std::atomic<uint64_t> doc_seq{0};
    std::vector<Slot> slots;
  };

  ThreadBuffer* BufferForThisThread();
  /// Seqlock walk of one thread's ring over [from, head); torn or
  /// lapped slots increment Snapshot::dropped instead of appearing.
  void CollectThread(size_t t, uint64_t from, uint64_t head,
                     Snapshot* out) const;

  const size_t capacity_;  // Power of two.
  const size_t mask_;
  const size_t max_threads_;
  /// Process-unique instance id, matched against the thread-local
  /// registration cache (see flight_recorder.cc).
  uint64_t id_ = 0;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<size_t> next_thread_{0};
  std::atomic<uint64_t> unregistered_drops_{0};
  /// Drainer-only bookkeeping: write index up to which each thread's
  /// ring has been drained.
  std::vector<uint64_t> drained_upto_;
  Stopwatch epoch_;
};

namespace detail {
/// Process-global recorder; nullptr (the default) makes every
/// XPRED_RECORD_EVENT a single predictable branch.
inline std::atomic<FlightRecorder*> g_flight_recorder{nullptr};
}  // namespace detail

inline FlightRecorder* FlightRecorder::Installed() {
  return detail::g_flight_recorder.load(std::memory_order_acquire);
}

/// Instrumentation checkpoint: records an event when a recorder is
/// installed. Compiles out entirely under -DXPRED_NO_FLIGHT_RECORDER.
#ifdef XPRED_NO_FLIGHT_RECORDER
#define XPRED_RECORD_EVENT(type, a, b) \
  do {                                 \
  } while (0)
#else
#define XPRED_RECORD_EVENT(type, a, b)                          \
  do {                                                          \
    ::xpred::obs::FlightRecorder* _xpred_fr =                   \
        ::xpred::obs::FlightRecorder::Installed();              \
    if (_xpred_fr != nullptr) [[unlikely]] {                    \
      _xpred_fr->Record((type), static_cast<uint64_t>(a),       \
                        static_cast<uint64_t>(b));              \
    }                                                           \
  } while (0)
#endif

}  // namespace xpred::obs

#endif  // XPRED_OBS_FLIGHT_RECORDER_H_
