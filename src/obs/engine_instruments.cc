#include "obs/engine_instruments.h"

#include "obs/flight_recorder.h"

namespace xpred::obs {

namespace {

constexpr std::string_view kStageLatencyName = "xpred_stage_latency_ns";
constexpr std::string_view kStageLatencyHelp =
    "Per-document filtering-stage latency in nanoseconds.";

/// Carries an already-recorded counter value over to a new registry
/// binding (no-op when re-binding resolved to the same metric).
void CarryOver(Counter* fresh, Counter* old) {
  if (old != nullptr && old != fresh) fresh->Increment(old->value());
}

}  // namespace

void EngineInstruments::Bind(MetricsRegistry* registry,
                             std::string_view engine_name) {
  engine_name_.assign(engine_name);
  const std::vector<Label> engine_label = {
      {"engine", engine_name_}};

  Counter* old_documents = documents_;
  Counter* old_paths = paths_;
  Counter* old_occurrence = occurrence_runs_;
  Counter* old_truncated = nested_truncated_;
  Counter* old_matches = predicate_matches_;
  std::array<Histogram*, kStageCount> old_hist = stage_hist_;

  registry_ = registry;
  documents_ = registry->AddCounter(
      "xpred_documents_total", "Documents filtered.", engine_label);
  paths_ = registry->AddCounter(
      "xpred_paths_total", "Root-to-leaf document paths processed.",
      engine_label);
  occurrence_runs_ = registry->AddCounter(
      "xpred_occurrence_runs_total",
      "Executions of the occurrence determination algorithm (paper "
      "Alg. 1).",
      engine_label);
  nested_truncated_ = registry->AddCounter(
      "xpred_nested_enumeration_truncated_total",
      "Nested-path witness enumerations that hit the search budget.",
      engine_label);
  predicate_matches_ = registry->AddCounter(
      "xpred_predicate_matches_total",
      "(pid, pair) predicate matches recorded.", engine_label);
  for (size_t s = 0; s < kStageCount; ++s) {
    stage_hist_[s] = registry->AddHistogram(
        kStageLatencyName, kStageLatencyHelp,
        {{"engine", engine_name_},
         {"stage", std::string(StageName(static_cast<Stage>(s)))}});
  }

  // Workload gauges re-register lazily against the new registry.
  workload_tracked_ = nullptr;
  workload_evals_ = nullptr;
  workload_matches_ = nullptr;
  workload_cost_ = nullptr;
  workload_exact_mode_ = nullptr;

  CarryOver(documents_, old_documents);
  CarryOver(paths_, old_paths);
  CarryOver(occurrence_runs_, old_occurrence);
  CarryOver(nested_truncated_, old_truncated);
  CarryOver(predicate_matches_, old_matches);
  for (size_t s = 0; s < kStageCount; ++s) {
    if (old_hist[s] != nullptr && old_hist[s] != stage_hist_[s]) {
      stage_hist_[s]->MergeFrom(*old_hist[s]);
    }
  }
}

void EngineInstruments::BindOwned(std::string_view engine_name) {
  if (owned_registry_ == nullptr) {
    owned_registry_ = std::make_unique<MetricsRegistry>();
  }
  Bind(owned_registry_.get(), engine_name);
}

void EngineInstruments::BeginDocument() {
  stage_nanos_.fill(0);
  stage_touched_.fill(false);
  if (tracer_ != nullptr) {
    tracer_->BeginDocument();
    doc_start_nanos_ = tracer_->NowNanos();
  }
  XPRED_RECORD_EVENT(EventType::kDocBegin, documents_->value() + 1, 0);
}

void EngineInstruments::EndDocument() {
  uint64_t offset = doc_start_nanos_;
  uint64_t total_nanos = 0;
  for (size_t s = 0; s < kStageCount; ++s) {
    if (!stage_touched_[s]) continue;
    stage_hist_[s]->Record(stage_nanos_[s]);
    total_nanos += stage_nanos_[s];
    XPRED_RECORD_EVENT(EventType::kStage, s, stage_nanos_[s]);
    if (tracer_ != nullptr) {
      tracer_->EmitSpan(engine_name_, static_cast<Stage>(s), offset,
                        stage_nanos_[s]);
      offset += stage_nanos_[s];
    }
  }
  documents_->Increment();
  XPRED_RECORD_EVENT(EventType::kDocEnd, documents_->value(), total_nanos);
}

void EngineInstruments::RecordStage(Stage stage, uint64_t nanos) {
  stage_hist_[static_cast<size_t>(stage)]->Record(nanos);
  if (tracer_ != nullptr) {
    const uint64_t now = tracer_->NowNanos();
    tracer_->EmitSpan(engine_name_, stage, now >= nanos ? now - nanos : 0,
                      nanos);
  }
}

double EngineInstruments::stage_sum_micros(Stage stage) const {
  const Histogram* hist = stage_hist_[static_cast<size_t>(stage)];
  if (hist == nullptr) return 0;
  return static_cast<double>(hist->sum()) / 1e3;
}

void EngineInstruments::Reset() {
  if (!bound()) return;
  documents_->Reset();
  paths_->Reset();
  occurrence_runs_->Reset();
  nested_truncated_->Reset();
  predicate_matches_->Reset();
  for (Histogram* hist : stage_hist_) hist->Reset();
  if (workload_tracked_ != nullptr) {
    workload_tracked_->Reset();
    workload_evals_->Reset();
    workload_matches_->Reset();
    workload_cost_->Reset();
    workload_exact_mode_->Reset();
  }
  stage_nanos_.fill(0);
  stage_touched_.fill(false);
}

void EngineInstruments::PublishWorkload(const WorkloadSummary& summary) {
  if (!bound()) return;
  if (workload_tracked_ == nullptr) {
    const std::vector<Label> engine_label = {{"engine", engine_name_}};
    workload_tracked_ = registry_->AddGauge(
        "xpred_workload_tracked_expressions",
        "Distinct expression keys tracked by the workload profiler.",
        engine_label);
    workload_evals_ = registry_->AddGauge(
        "xpred_workload_evals",
        "Expression evaluations attributed by the workload profiler.",
        engine_label);
    workload_matches_ = registry_->AddGauge(
        "xpred_workload_matches",
        "Expression matches attributed by the workload profiler.",
        engine_label);
    workload_cost_ = registry_->AddGauge(
        "xpred_workload_cost",
        "Attributed evaluation cost units (visits + occurrence chain "
        "lengths).",
        engine_label);
    workload_exact_mode_ = registry_->AddGauge(
        "xpred_workload_exact_mode",
        "1 while the profiler holds exact per-expression counters, 0 "
        "after the sketch-only fallback.",
        engine_label);
  }
  workload_tracked_->Set(static_cast<double>(summary.tracked_expressions));
  workload_evals_->Set(static_cast<double>(summary.evals));
  workload_matches_->Set(static_cast<double>(summary.matches));
  workload_cost_->Set(static_cast<double>(summary.cost));
  workload_exact_mode_->Set(summary.exact_mode ? 1 : 0);
}

}  // namespace xpred::obs
