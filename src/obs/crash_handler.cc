#include "obs/crash_handler.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <exception>
#include <vector>

namespace xpred::obs {

namespace {

/// One pre-resolved metric the signal handler can read with plain
/// loads. json_name is already JSON-escaped and includes the rendered
/// label string, so crash-time output is byte copies only.
struct MetricEntry {
  std::string json_name;
  MetricType type = MetricType::kCounter;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
};

struct InstalledState {
  int fd = -1;
  std::string path;
  FlightRecorder* recorder = nullptr;
  std::vector<MetricEntry> metrics;
  struct sigaction old_segv;
  struct sigaction old_bus;
  struct sigaction old_abrt;
  std::terminate_handler old_terminate = nullptr;
  std::atomic<bool> dumped{false};
};

/// Raw pointer, published before the handlers are armed and read by
/// them; never freed while handlers are armed.
std::atomic<InstalledState*> g_state{nullptr};

// --- Async-signal-safe writers -------------------------------------
//
// Everything below the bundle writer uses only write(2) and stack
// buffers. No malloc, no stdio, no locks.

void WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // Out of disk / bad fd: keep what we have.
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
}

void WriteStr(int fd, std::string_view text) {
  WriteAll(fd, text.data(), text.size());
}

void WriteU64(int fd, uint64_t value) {
  char buf[24];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  WriteAll(fd, p, static_cast<size_t>(buf + sizeof(buf) - p));
}

/// Fixed-point double rendering (6 fractional digits) so gauges can be
/// emitted without snprintf. Good to ~2^63 magnitude, which covers
/// every gauge in the registry.
void WriteDouble(int fd, double value) {
  if (value < 0) {
    WriteStr(fd, "-");
    value = -value;
  }
  if (value > 9.2e18) {  // Out of int64 range; clamp rather than UB.
    WriteStr(fd, "9.2e18");
    return;
  }
  uint64_t whole = static_cast<uint64_t>(value);
  uint64_t micros = static_cast<uint64_t>((value - static_cast<double>(whole)) * 1e6 + 0.5);
  if (micros >= 1000000) {
    whole += 1;
    micros = 0;
  }
  WriteU64(fd, whole);
  WriteStr(fd, ".");
  char frac[6];
  for (int i = 5; i >= 0; --i) {
    frac[i] = static_cast<char>('0' + micros % 10);
    micros /= 10;
  }
  WriteAll(fd, frac, sizeof(frac));
}

/// Writes the whole diagnostic bundle to \p fd. Async-signal-safe:
/// reads the recorder through the raw (allocation-free) API and the
/// metric entries through plain value loads.
void WriteBundleToFd(int fd, DumpReason reason, int signal_number,
                     FlightRecorder* recorder, const MetricEntry* metrics,
                     size_t metric_count) {
  WriteStr(fd, "{\"xpred_diag_bundle\":1,\"reason\":\"");
  WriteStr(fd, DumpReasonName(reason));
  WriteStr(fd, "\",\"signal\":");
  WriteU64(fd, static_cast<uint64_t>(signal_number));
  WriteStr(fd, ",\"nanos\":");
  WriteU64(fd, recorder != nullptr ? recorder->NowNanos() : 0);

  WriteStr(fd, ",\"recorder\":{\"installed\":");
  WriteStr(fd, recorder != nullptr ? "true" : "false");
  if (recorder != nullptr) {
    WriteStr(fd, ",\"events_per_thread\":");
    WriteU64(fd, recorder->events_per_thread());
    WriteStr(fd, ",\"registered_threads\":");
    WriteU64(fd, recorder->registered_threads());
    WriteStr(fd, ",\"unregistered_drops\":");
    WriteU64(fd, recorder->unregistered_drops());

    uint64_t dropped = 0;
    const size_t threads = recorder->registered_threads();
    for (size_t t = 0; t < threads; ++t) {
      const uint64_t written = recorder->thread_written(t);
      if (written > recorder->events_per_thread()) {
        dropped += written - recorder->events_per_thread();
      }
    }
    WriteStr(fd, ",\"dropped\":");
    WriteU64(fd, dropped);

    WriteStr(fd, ",\"events\":[");
    bool first = true;
    for (size_t t = 0; t < threads; ++t) {
      const uint64_t written = recorder->thread_written(t);
      const uint64_t oldest =
          written > recorder->events_per_thread()
              ? written - recorder->events_per_thread()
              : 0;
      for (uint64_t i = oldest; i < written; ++i) {
        FlightRecorder::Event event;
        if (!recorder->ReadEventRaw(t, i, &event)) continue;
        if (!first) WriteStr(fd, ",");
        first = false;
        WriteStr(fd, "{\"nanos\":");
        WriteU64(fd, event.nanos);
        WriteStr(fd, ",\"thread\":");
        WriteU64(fd, event.thread);
        WriteStr(fd, ",\"type\":\"");
        WriteStr(fd, EventTypeName(event.type));
        WriteStr(fd, "\",\"a\":");
        WriteU64(fd, event.a);
        WriteStr(fd, ",\"b\":");
        WriteU64(fd, event.b);
        WriteStr(fd, "}");
      }
    }
    WriteStr(fd, "],\"thread_docs\":[");
    for (size_t t = 0; t < threads; ++t) {
      if (t > 0) WriteStr(fd, ",");
      const FlightRecorder::ThreadDoc doc = recorder->ReadThreadDoc(t);
      WriteStr(fd, "{\"thread\":");
      WriteU64(fd, doc.thread);
      WriteStr(fd, ",\"fingerprint\":");
      WriteU64(fd, doc.fingerprint);
      WriteStr(fd, ",\"doc_seq\":");
      WriteU64(fd, doc.doc_seq);
      WriteStr(fd, "}");
    }
    WriteStr(fd, "]");
  }
  WriteStr(fd, "}");

  WriteStr(fd, ",\"metrics\":[");
  for (size_t m = 0; m < metric_count; ++m) {
    const MetricEntry& entry = metrics[m];
    if (m > 0) WriteStr(fd, ",");
    WriteStr(fd, "{\"name\":\"");
    WriteStr(fd, entry.json_name);
    WriteStr(fd, "\",\"type\":\"");
    switch (entry.type) {
      case MetricType::kCounter:
        WriteStr(fd, "counter\",\"value\":");
        WriteU64(fd, entry.counter->value());
        break;
      case MetricType::kGauge:
        WriteStr(fd, "gauge\",\"value\":");
        WriteDouble(fd, entry.gauge->value());
        break;
      case MetricType::kHistogram:
        WriteStr(fd, "histogram\",\"count\":");
        WriteU64(fd, entry.histogram->count());
        WriteStr(fd, ",\"sum\":");
        WriteU64(fd, entry.histogram->sum());
        WriteStr(fd, ",\"max\":");
        WriteU64(fd, entry.histogram->max());
        break;
    }
    WriteStr(fd, "}");
  }
  WriteStr(fd, "]}\n");
}

// --- Install-time (allocating) helpers -----------------------------

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::vector<MetricEntry> BuildMetricEntries(const MetricsRegistry* registry) {
  std::vector<MetricEntry> entries;
  if (registry == nullptr) return entries;
  for (const auto& [name, family] : registry->families()) {
    for (const auto& [labels, instance] : family.instances) {
      MetricEntry entry;
      entry.json_name = JsonEscape(
          labels.empty() ? name : name + "{" + labels + "}");
      entry.type = family.type;
      entry.counter = &instance.counter;
      entry.gauge = &instance.gauge;
      entry.histogram = instance.histogram.get();
      entries.push_back(std::move(entry));
    }
  }
  return entries;
}

void RecordDumpEvent(FlightRecorder* recorder, DumpReason reason) {
  if (recorder != nullptr) {
    recorder->Record(EventType::kDump, static_cast<uint64_t>(reason), 0);
  }
}

// --- Handlers ------------------------------------------------------

void OnFatalSignal(int signal_number) {
  InstalledState* state = g_state.load(std::memory_order_acquire);
  if (state != nullptr &&
      !state->dumped.exchange(true, std::memory_order_acq_rel)) {
    RecordDumpEvent(state->recorder, DumpReason::kSignal);
    WriteBundleToFd(state->fd, DumpReason::kSignal, signal_number,
                    state->recorder, state->metrics.data(),
                    state->metrics.size());
    ::fsync(state->fd);
  }
  // Restore the default disposition and re-raise so the process dies
  // with the original signal (exit status preserved for the parent).
  ::signal(signal_number, SIG_DFL);
  ::raise(signal_number);
}

[[noreturn]] void OnTerminate() {
  InstalledState* state = g_state.load(std::memory_order_acquire);
  if (state != nullptr &&
      !state->dumped.exchange(true, std::memory_order_acq_rel)) {
    RecordDumpEvent(state->recorder, DumpReason::kTerminate);
    WriteBundleToFd(state->fd, DumpReason::kTerminate, 0, state->recorder,
                    state->metrics.data(), state->metrics.size());
    ::fsync(state->fd);
  }
  std::abort();  // SIGABRT handler sees dumped == true and re-raises.
}

}  // namespace

std::string_view DumpReasonName(DumpReason reason) {
  switch (reason) {
    case DumpReason::kSignal:
      return "signal";
    case DumpReason::kTerminate:
      return "terminate";
    case DumpReason::kWatchdog:
      return "watchdog";
    case DumpReason::kManual:
      return "manual";
  }
  return "unknown";
}

Status CrashHandler::Install(const Options& options) {
  int fd = ::open(options.bundle_path.c_str(),
                  O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot create diagnostic bundle at " +
                                   options.bundle_path);
  }
  Uninstall();

  auto* state = new InstalledState();
  state->fd = fd;
  state->path = options.bundle_path;
  state->recorder = options.recorder;
  state->metrics = BuildMetricEntries(options.registry);

  struct sigaction action;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  action.sa_handler = &OnFatalSignal;
  ::sigaction(SIGSEGV, &action, &state->old_segv);
  ::sigaction(SIGBUS, &action, &state->old_bus);
  ::sigaction(SIGABRT, &action, &state->old_abrt);
  state->old_terminate = std::set_terminate(&OnTerminate);

  g_state.store(state, std::memory_order_release);
  return Status::OK();
}

void CrashHandler::Uninstall() {
  InstalledState* state = g_state.exchange(nullptr, std::memory_order_acq_rel);
  if (state == nullptr) return;
  ::sigaction(SIGSEGV, &state->old_segv, nullptr);
  ::sigaction(SIGBUS, &state->old_bus, nullptr);
  ::sigaction(SIGABRT, &state->old_abrt, nullptr);
  std::set_terminate(state->old_terminate);
  ::close(state->fd);
  if (!state->dumped.load(std::memory_order_acquire)) {
    ::unlink(state->path.c_str());  // Clean runs leave no empty bundle.
  }
  delete state;
}

bool CrashHandler::Installed() {
  return g_state.load(std::memory_order_acquire) != nullptr;
}

Status CrashHandler::WriteBundle(const std::string& path, DumpReason reason,
                                 FlightRecorder* recorder,
                                 const MetricsRegistry* registry) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot create diagnostic bundle at " +
                                   path);
  }
  RecordDumpEvent(recorder, reason);
  const std::vector<MetricEntry> metrics = BuildMetricEntries(registry);
  WriteBundleToFd(fd, reason, 0, recorder, metrics.data(), metrics.size());
  ::close(fd);
  return Status::OK();
}

}  // namespace xpred::obs
