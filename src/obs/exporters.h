#ifndef XPRED_OBS_EXPORTERS_H_
#define XPRED_OBS_EXPORTERS_H_

#include <ostream>
#include <string>
#include <string_view>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace xpred::obs {

/// Writes the registry in Prometheus text exposition format
/// (https://prometheus.io/docs/instrumenting/exposition_formats/).
/// Histograms emit cumulative `_bucket{le=...}` series at every
/// non-empty bucket's inclusive upper bound plus `le="+Inf"`, and the
/// usual `_sum`/`_count` series. Output order is deterministic
/// (name-sorted families, label-sorted instances) so the format is
/// golden-testable.
void WritePrometheusText(const MetricsRegistry& registry, std::ostream* out);

/// Writes a flat JSON dump of a snapshot:
///   {"counters": {"name{labels}": 1, ...},
///    "gauges": {...},
///    "histograms": {"name{labels}": {"count":..., "sum":..., "min":...,
///        "max":..., "p50":..., "p90":..., "p99":...,
///        "buckets": [[upper, count], ...]}, ...}}
void WriteJson(const MetricsSnapshot& snapshot, std::ostream* out);
/// Convenience: Snapshot() + WriteJson.
void WriteJson(const MetricsRegistry& registry, std::ostream* out);

/// Writes the benchmark metrics sidecar: the JSON dump wrapped with
/// provenance, the schema validated by scripts/check_metrics_schema.py:
///   {"schema_version": 1, "source": "...", "engine": "...",
///    "counters": ..., "gauges": ..., "histograms": ...}
void WriteMetricsSidecarJson(const MetricsSnapshot& snapshot,
                             std::string_view source,
                             std::string_view engine_name,
                             std::ostream* out);

/// Sidecar variant with a workload-analytics section:
///   {"schema_version": 1, "source": ..., "engine": ...,
///    "workload": <workload_json>, "counters": ...}
/// \p workload_json must be a pre-rendered JSON object (the analytics
/// layer's RenderWorkloadJson output — obs does not depend on it);
/// when empty the section is omitted and the output matches the plain
/// overload.
void WriteMetricsSidecarJson(const MetricsSnapshot& snapshot,
                             std::string_view source,
                             std::string_view engine_name,
                             std::string_view workload_json,
                             std::ostream* out);

/// Sidecar variant with flight-recorder provenance:
///   {..., "workload": ..., "recorder": <recorder_json>, "counters": ...}
/// Either pre-rendered section may be empty (omitted).
void WriteMetricsSidecarJson(const MetricsSnapshot& snapshot,
                             std::string_view source,
                             std::string_view engine_name,
                             std::string_view workload_json,
                             std::string_view recorder_json,
                             std::ostream* out);

/// Renders a drained FlightRecorder snapshot as the sidecar
/// "recorder" section:
///   {"events_per_thread": N, "registered_threads": N, "events": N,
///    "dropped": N, "unregistered_drops": N,
///    "events_by_type": {"doc_begin": 3, ...}}
std::string RenderRecorderSidecarJson(
    const FlightRecorder& recorder,
    const FlightRecorder::Snapshot& snapshot);

}  // namespace xpred::obs

#endif  // XPRED_OBS_EXPORTERS_H_
