#ifndef XPRED_OBS_ENGINE_INSTRUMENTS_H_
#define XPRED_OBS_ENGINE_INSTRUMENTS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xpred::obs {

/// Aggregate workload-analytics figures published as gauges. The
/// analytics layer sits above obs in the dependency order, so it hands
/// its totals down through this plain struct rather than obs depending
/// on the profiler type.
struct WorkloadSummary {
  /// Distinct expression keys currently tracked (exact map size, or
  /// the sketch's monitored-entry count once the exact map is dropped).
  uint64_t tracked_expressions = 0;
  uint64_t evals = 0;
  uint64_t matches = 0;
  uint64_t cost = 0;
  /// 1 while the profiler still holds exact per-expression counters.
  bool exact_mode = true;
};

/// \brief One engine's handle into the observability layer.
///
/// Owns the engine's registered metrics (per-stage latency histograms
/// plus the paper's counters) and the per-document stage accumulators
/// that feed them, and forwards aggregated stage spans to an attached
/// Tracer. core::FilterEngine holds one of these and derives its
/// legacy EngineStats view from it.
///
/// Protocol per document:
///   BeginDocument();
///   AddStageNanos(stage, nanos);   // any number of times, any order
///   ...
///   EndDocument();                 // flush: one histogram sample and
///                                  // one trace span per touched
///                                  // stage, ++documents
/// RecordStage() bypasses the accumulators for work outside the
/// document window (XML parse time charged after FilterDocument).
///
/// Hot-path calls (AddStageNanos, the counter increments) are plain
/// array/pointer arithmetic — no allocation, no map lookups. Bind()
/// must have been called first; core::FilterEngine does this lazily.
class EngineInstruments {
 public:
  EngineInstruments() = default;
  EngineInstruments(const EngineInstruments&) = delete;
  EngineInstruments& operator=(const EngineInstruments&) = delete;

  bool bound() const { return registry_ != nullptr; }

  /// Registers this engine's metrics in \p registry under the label
  /// engine=\p engine_name. Values recorded under a previous binding
  /// are carried over.
  void Bind(MetricsRegistry* registry, std::string_view engine_name);
  /// Binds to a private registry owned by these instruments.
  void BindOwned(std::string_view engine_name);
  MetricsRegistry* registry() const { return registry_; }

  /// \p tracer is not owned; nullptr disables span emission.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  void BeginDocument();
  void AddStageNanos(Stage stage, uint64_t nanos) {
    stage_nanos_[static_cast<size_t>(stage)] += nanos;
    stage_touched_[static_cast<size_t>(stage)] = true;
  }
  void EndDocument();
  /// Immediate record: one histogram sample and (if tracing) one span
  /// ending now.
  void RecordStage(Stage stage, uint64_t nanos);

  void AddPaths(uint64_t n) { paths_->Increment(n); }
  void IncOccurrenceRuns() { occurrence_runs_->Increment(); }
  void IncNestedTruncated() { nested_truncated_->Increment(); }
  void AddPredicateMatches(uint64_t n) { predicate_matches_->Increment(n); }
  /// Bulk variants for flushing counters accumulated off-thread
  /// (worker MatchContexts run with unbound instruments).
  void AddOccurrenceRuns(uint64_t n) { occurrence_runs_->Increment(n); }
  void AddNestedTruncated(uint64_t n) { nested_truncated_->Increment(n); }

  /// \name View accessors (0 when unbound) for the EngineStats shim.
  ///@{
  uint64_t documents() const { return bound() ? documents_->value() : 0; }
  uint64_t paths() const { return bound() ? paths_->value() : 0; }
  uint64_t occurrence_runs() const {
    return bound() ? occurrence_runs_->value() : 0;
  }
  uint64_t nested_truncated() const {
    return bound() ? nested_truncated_->value() : 0;
  }
  uint64_t predicate_matches() const {
    return bound() ? predicate_matches_->value() : 0;
  }
  double stage_sum_micros(Stage stage) const;
  const Histogram* stage_histogram(Stage stage) const {
    return stage_hist_[static_cast<size_t>(stage)];
  }
  ///@}

  /// Publishes workload-analytics totals as xpred_workload_* gauges
  /// under this engine's label. Gauges are registered lazily on first
  /// call, so engines that never profile add nothing to the registry.
  /// No-op while unbound.
  void PublishWorkload(const WorkloadSummary& summary);

  /// Zeroes this engine's metrics (only them — a shared registry's
  /// other engines are untouched).
  void Reset();

  std::string_view engine_name() const { return engine_name_; }

 private:
  MetricsRegistry* registry_ = nullptr;
  std::unique_ptr<MetricsRegistry> owned_registry_;
  Tracer* tracer_ = nullptr;
  std::string engine_name_;

  Counter* documents_ = nullptr;
  Counter* paths_ = nullptr;
  Counter* occurrence_runs_ = nullptr;
  Counter* nested_truncated_ = nullptr;
  Counter* predicate_matches_ = nullptr;
  std::array<Histogram*, kStageCount> stage_hist_{};

  // Lazily registered by PublishWorkload (cleared on re-Bind).
  Gauge* workload_tracked_ = nullptr;
  Gauge* workload_evals_ = nullptr;
  Gauge* workload_matches_ = nullptr;
  Gauge* workload_cost_ = nullptr;
  Gauge* workload_exact_mode_ = nullptr;

  // Current-document accumulators.
  std::array<uint64_t, kStageCount> stage_nanos_{};
  std::array<bool, kStageCount> stage_touched_{};
  uint64_t doc_start_nanos_ = 0;
};

}  // namespace xpred::obs

#endif  // XPRED_OBS_ENGINE_INSTRUMENTS_H_
