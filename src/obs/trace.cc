#include "obs/trace.h"

namespace xpred::obs {

std::string_view StageName(Stage stage) {
  switch (stage) {
    case Stage::kParse:
      return "parse";
    case Stage::kEncode:
      return "encode";
    case Stage::kPredicate:
      return "predicate";
    case Stage::kOccurrence:
      return "occurrence";
    case Stage::kVerify:
      return "verify";
    case Stage::kCollect:
      return "collect";
  }
  return "unknown";
}

RingBufferSink::RingBufferSink(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  spans_.reserve(capacity_);
}

void RingBufferSink::Emit(const TraceSpan& span) {
  if (spans_.size() < capacity_) {
    spans_.push_back(span);
    ++size_;
    return;
  }
  spans_[next_] = span;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceSpan> RingBufferSink::Drain() {
  std::vector<TraceSpan> out;
  out.reserve(size_);
  // When the buffer wrapped, next_ points at the oldest span.
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(spans_[(next_ + i) % spans_.size()]);
  }
  spans_.clear();
  next_ = 0;
  size_ = 0;
  // The drop counter covers the drained window only: a drain hands
  // the caller everything still buffered and resets the sink whole,
  // mirroring FlightRecorder::Drain's per-window `dropped` semantics.
  dropped_ = 0;
  return out;
}

JsonlSink::JsonlSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)) {
  if (owned_->is_open()) out_ = owned_.get();
}

void JsonlSink::Emit(const TraceSpan& span) {
  if (!ok()) return;
  *out_ << "{\"doc\":" << span.document << ",\"engine\":\"" << span.engine
        << "\",\"span\":\"" << StageName(span.stage)
        << "\",\"start_ns\":" << span.start_nanos
        << ",\"dur_ns\":" << span.duration_nanos << "}\n";
}

void JsonlSink::Flush() {
  if (out_ != nullptr) out_->flush();
}

}  // namespace xpred::obs
