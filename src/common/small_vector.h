#ifndef XPRED_COMMON_SMALL_VECTOR_H_
#define XPRED_COMMON_SMALL_VECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace xpred::common {

namespace detail {

/// Process-wide count of SmallVector heap spills. Tests assert the
/// inline fast path stays allocation-free (the hot-path contract the
/// parallel pipeline depends on: no allocator contention for short
/// OccPair lists or shallow element stacks).
inline std::atomic<uint64_t>& SmallVectorHeapAllocations() {
  static std::atomic<uint64_t> count{0};
  return count;
}

}  // namespace detail

/// \brief Vector with inline storage for the first \p N elements.
///
/// Behaves like a pared-down std::vector but stores up to N elements in
/// the object itself, touching the heap only when the size exceeds N.
/// Used for per-path OccPair lists (predicate match results are almost
/// always 1-2 pairs) and the streaming open-element stack (document
/// depth rarely exceeds 16), where per-path std::vector churn became
/// the allocator bottleneck under multi-threaded filtering.
///
/// Not thread-safe; meant for thread-local scratch state.
template <typename T, size_t N>
class SmallVector {
  static_assert(N > 0, "SmallVector requires inline capacity > 0");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using size_type = size_t;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) {
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; ++i) {
      ::new (static_cast<void*>(data_ + i)) T(other.data_[i]);
    }
    size_ = other.size_;
  }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; ++i) {
      ::new (static_cast<void*>(data_ + i)) T(other.data_[i]);
    }
    size_ = other.size_;
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this == &other) return *this;
    DestroyAll();
    ReleaseHeap();
    data_ = InlinePtr();
    capacity_ = N;
    size_ = 0;
    MoveFrom(std::move(other));
    return *this;
  }

  ~SmallVector() {
    DestroyAll();
    ReleaseHeap();
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  bool is_inline() const { return data_ == InlinePtr(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  /// Destroys all elements but keeps the current storage (inline or
  /// heap), so a reused scratch list never re-pays the spill.
  void clear() {
    DestroyAll();
    size_ = 0;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(size_ + 1);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  void resize(size_t n) {
    if (n < size_) {
      for (size_t i = n; i < size_; ++i) data_[i].~T();
    } else {
      reserve(n);
      for (size_t i = size_; i < n; ++i) {
        ::new (static_cast<void*>(data_ + i)) T();
      }
    }
    size_ = n;
  }

  void resize(size_t n, const T& value) {
    if (n < size_) {
      for (size_t i = n; i < size_; ++i) data_[i].~T();
    } else {
      reserve(n);
      for (size_t i = size_; i < n; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(value);
      }
    }
    size_ = n;
  }

  bool operator==(const SmallVector& other) const {
    if (size_ != other.size_) return false;
    for (size_t i = 0; i < size_; ++i) {
      if (!(data_[i] == other.data_[i])) return false;
    }
    return true;
  }

 private:
  T* InlinePtr() { return reinterpret_cast<T*>(inline_); }
  const T* InlinePtr() const { return reinterpret_cast<const T*>(inline_); }

  void DestroyAll() {
    for (size_t i = 0; i < size_; ++i) data_[i].~T();
  }

  void ReleaseHeap() {
    if (!is_inline()) std::allocator<T>().deallocate(data_, capacity_);
  }

  void MoveFrom(SmallVector&& other) noexcept {
    if (other.is_inline()) {
      for (size_t i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      size_ = other.size_;
      other.size_ = 0;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.InlinePtr();
      other.capacity_ = N;
      other.size_ = 0;
    }
  }

  void Grow(size_t min_capacity) {
    size_t next = capacity_ * 2;
    if (next < min_capacity) next = min_capacity;
    T* heap = std::allocator<T>().allocate(next);
    detail::SmallVectorHeapAllocations().fetch_add(1,
                                                   std::memory_order_relaxed);
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(heap + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    ReleaseHeap();
    data_ = heap;
    capacity_ = next;
  }

  size_t size_ = 0;
  size_t capacity_ = N;
  T* data_ = InlinePtr();
  alignas(T) unsigned char inline_[N * sizeof(T)];
};

}  // namespace xpred::common

#endif  // XPRED_COMMON_SMALL_VECTOR_H_
