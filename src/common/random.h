#ifndef XPRED_COMMON_RANDOM_H_
#define XPRED_COMMON_RANDOM_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace xpred {

/// \brief Deterministic 64-bit pseudo-random generator (xoshiro256**),
/// seeded via SplitMix64.
///
/// All workload generators in the library take an explicit seed so
/// experiments are exactly reproducible; std::mt19937 is avoided because
/// its distributions are not portable across standard library
/// implementations.
class Random {
 public:
  /// Constructs a generator from a 64-bit seed. Two generators built
  /// from the same seed produce identical sequences on every platform.
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Returns the next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    // 53 random mantissa bits.
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Picks a uniformly random element of \p items. Requires non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    assert(!items.empty());
    return items[Uniform(items.size())];
  }

  /// Fisher-Yates shuffles \p items in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace xpred

#endif  // XPRED_COMMON_RANDOM_H_
