#include "common/interner.h"

namespace xpred {

SymbolId Interner::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

SymbolId Interner::Lookup(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return kInvalidSymbol;
  return it->second;
}

size_t Interner::ApproximateMemoryBytes() const {
  size_t total = names_.capacity() * sizeof(std::string) +
                 index_.bucket_count() * sizeof(void*);
  for (const std::string& name : names_) {
    if (name.capacity() > sizeof(std::string)) total += name.capacity();
    // Each index_ node duplicates the key plus hash-node overhead.
    total += sizeof(std::string) + name.size() + 3 * sizeof(void*);
  }
  return total;
}

}  // namespace xpred
