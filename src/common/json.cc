#include "common/json.h"

#include <cctype>
#include <charconv>

namespace xpred {

namespace {
constexpr size_t kMaxDepth = 100;
}  // namespace

uint64_t JsonValue::AsU64(uint64_t fallback) const {
  if (!is_number()) return fallback;
  uint64_t value = 0;
  const char* begin = number_raw_.data();
  const char* end = begin + number_raw_.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return fallback;
  return value;
}

double JsonValue::AsDouble(double fallback) const {
  if (!is_number()) return fallback;
  double value = 0;
  const char* begin = number_raw_.data();
  const char* end = begin + number_raw_.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return fallback;
  return value;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindPath(
    std::initializer_list<std::string_view> keys) const {
  const JsonValue* value = this;
  for (std::string_view key : keys) {
    value = value->Find(key);
    if (value == nullptr) return nullptr;
  }
  return value;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    Status st = ParseValue(&value, 0);
    if (!st.ok()) return st;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(std::string message) const {
    message += " at byte ";
    message += std::to_string(pos_);
    return Status::InvalidArgument(std::move(message));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        return ParseLiteral("true", out, JsonValue::Kind::kBool, true);
      case 'f':
        return ParseLiteral("false", out, JsonValue::Kind::kBool, false);
      case 'n':
        return ParseLiteral("null", out, JsonValue::Kind::kNull, false);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view word, JsonValue* out,
                      JsonValue::Kind kind, bool bool_value) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    out->kind_ = kind;
    out->bool_ = bool_value;
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return Error("invalid number");
    }
    if (Consume('.')) {
      const size_t frac_start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac_start) return Error("invalid number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const size_t exp_start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp_start) return Error("invalid number exponent");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_raw_.assign(text_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out->push_back(e);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    Consume('[');
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue element;
      Status st = ParseValue(&element, depth + 1);
      if (!st.ok()) return st;
      out->array_.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    Consume('{');
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      JsonValue value;
      st = ParseValue(&value, depth + 1);
      if (!st.ok()) return st;
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace xpred
