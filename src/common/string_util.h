#ifndef XPRED_COMMON_STRING_UTIL_H_
#define XPRED_COMMON_STRING_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xpred {

/// Splits \p input on the separator character. Empty pieces are kept:
/// Split("a//b", '/') == {"a", "", "b"}.
std::vector<std::string_view> Split(std::string_view input, char sep);

/// Joins \p pieces with the separator string.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// True iff \p input starts with \p prefix.
bool StartsWith(std::string_view input, std::string_view prefix);

/// Parses a decimal double. Returns nullopt when \p input is not
/// entirely a number.
std::optional<double> ParseDouble(std::string_view input);

/// Parses a non-negative decimal integer. Returns nullopt on overflow
/// or non-digit characters.
std::optional<uint64_t> ParseUint(std::string_view input);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace xpred

#endif  // XPRED_COMMON_STRING_UTIL_H_
