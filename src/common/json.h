#ifndef XPRED_COMMON_JSON_H_
#define XPRED_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace xpred {

/// \brief Minimal read-only JSON document model for the diagnostics
/// tooling (`xpred_cli diagnose` reads crash bundles back in).
///
/// Numbers keep their raw source text: bundle payload words are
/// uint64 values (hashes, fingerprints) that exceed double's 2^53
/// exact-integer range, so parsing them through double would corrupt
/// them. AsU64 re-parses the raw text exactly; AsDouble is available
/// for gauges.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  /// Exact unsigned-integer value of a number token ("18446744..."),
  /// \p fallback for non-numbers and non-integer text.
  uint64_t AsU64(uint64_t fallback = 0) const;
  double AsDouble(double fallback = 0) const;
  std::string_view AsString(std::string_view fallback = {}) const {
    return is_string() ? std::string_view(string_) : fallback;
  }
  /// Raw source text of a number token.
  std::string_view raw_number() const { return number_raw_; }

  const std::vector<JsonValue>& array() const { return array_; }
  /// Object members in source order (duplicate keys are kept;
  /// Find returns the first).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// First member named \p key, nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  /// Find for nested paths: Find("recorder") then Find("events")...
  const JsonValue* FindPath(
      std::initializer_list<std::string_view> keys) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string number_raw_;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Depth-limited; errors carry byte offsets.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace xpred

#endif  // XPRED_COMMON_JSON_H_
