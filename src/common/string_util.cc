#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>

namespace xpred {

std::vector<std::string_view> Split(std::string_view input, char sep) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      pieces.push_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result.append(sep);
    result.append(pieces[i]);
  }
  return result;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

std::optional<double> ParseDouble(std::string_view input) {
  if (input.empty()) return std::nullopt;
  // strtod accepts leading whitespace; the callers (attribute values,
  // XPath literals) must not.
  if (std::isspace(static_cast<unsigned char>(input.front()))) {
    return std::nullopt;
  }
  std::string buf(input);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::optional<uint64_t> ParseUint(std::string_view input) {
  if (input.empty()) return std::nullopt;
  uint64_t value = 0;
  for (char c : input) {
    if (c < '0' || c > '9') return std::nullopt;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (size > 0) {
    result.resize(static_cast<size_t>(size));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

}  // namespace xpred
