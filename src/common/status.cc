#include "common/status.h"

namespace xpred {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kXmlParseError:
      return "XmlParseError";
    case StatusCode::kXPathParseError:
      return "XPathParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kRejected:
      return "Rejected";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

}  // namespace xpred
