#include "common/limits.h"

#include <string>

namespace xpred {

namespace {

std::string LimitMessage(const char* what, size_t seen, size_t limit) {
  std::string msg = what;
  msg += " limit exceeded: ";
  msg += std::to_string(seen);
  msg += " > ";
  msg += std::to_string(limit);
  return msg;
}

}  // namespace

void ExecBudget::Arm(const ResourceLimits& limits) {
  limits_ = limits;
  armed_ = true;
  deadline_forced_ = false;
  paths_ = 0;
  entity_expansions_ = 0;
  deadline_calls_ = 0;
  has_deadline_ = limits.deadline_ms > 0;
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        limits.deadline_ms));
  }
}

Status ExecBudget::CheckDocumentBytes(size_t bytes) const {
  if (!armed_ || limits_.max_document_bytes == 0 ||
      bytes <= limits_.max_document_bytes) {
    return Status::OK();
  }
  return Status::ResourceExhausted(
      LimitMessage("document bytes", bytes, limits_.max_document_bytes));
}

Status ExecBudget::CheckDepth(size_t depth) const {
  if (!armed_ || limits_.max_element_depth == 0 ||
      depth <= limits_.max_element_depth) {
    return Status::OK();
  }
  return Status::ResourceExhausted(
      LimitMessage("element depth", depth, limits_.max_element_depth));
}

Status ExecBudget::CheckAttributeCount(size_t count) const {
  if (!armed_ || limits_.max_attributes_per_element == 0 ||
      count <= limits_.max_attributes_per_element) {
    return Status::OK();
  }
  return Status::ResourceExhausted(LimitMessage(
      "attributes per element", count, limits_.max_attributes_per_element));
}

Status ExecBudget::AddPath() {
  ++paths_;
  if (!armed_ || limits_.max_extracted_paths == 0 ||
      paths_ <= limits_.max_extracted_paths) {
    return Status::OK();
  }
  return Status::ResourceExhausted(
      LimitMessage("extracted paths", paths_, limits_.max_extracted_paths));
}

Status ExecBudget::AddEntityExpansions(size_t n) {
  entity_expansions_ += n;
  if (!armed_ || limits_.max_entity_expansions == 0 ||
      entity_expansions_ <= limits_.max_entity_expansions) {
    return Status::OK();
  }
  return Status::ResourceExhausted(LimitMessage(
      "entity expansions", entity_expansions_, limits_.max_entity_expansions));
}

Status ExecBudget::CheckDeadlineNow() {
  if (!armed_ || !has_deadline_) return Status::OK();
  if (deadline_forced_) {
    return Status::DeadlineExceeded(
        "document deadline expired (forced by fault injection)");
  }
  if (std::chrono::steady_clock::now() >= deadline_) {
    std::string msg = "document deadline of ";
    msg += std::to_string(limits_.deadline_ms);
    msg += " ms expired";
    return Status::DeadlineExceeded(std::move(msg));
  }
  return Status::OK();
}

}  // namespace xpred
