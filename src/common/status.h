#ifndef XPRED_COMMON_STATUS_H_
#define XPRED_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace xpred {

/// \brief Error categories used across the library.
///
/// The library does not throw exceptions from its public API (RocksDB /
/// Arrow idiom): every fallible operation returns a Status or a
/// Result<T>.
enum class StatusCode {
  kOk = 0,
  /// A caller supplied an argument that violates the API contract.
  kInvalidArgument,
  /// An XML document failed to parse.
  kXmlParseError,
  /// An XPath expression failed to parse or uses unsupported syntax.
  kXPathParseError,
  /// A requested entity (expression id, element, ...) does not exist.
  kNotFound,
  /// An internal invariant was violated (a library bug).
  kInternal,
  /// A configured capacity (e.g., maximum expression length) was exceeded.
  kCapacityExceeded,
  /// A resource-governance limit (document bytes, element depth,
  /// attribute count, extracted paths, entity expansions) was hit while
  /// ingesting a document. Permanent for that document: retrying cannot
  /// succeed without raising the limit.
  kResourceExhausted,
  /// The per-document soft wall-clock deadline expired at a cooperative
  /// checkpoint. Transient: a retry may succeed on a less loaded system.
  kDeadlineExceeded,
  /// The document was refused without being examined (load shedding by
  /// an open circuit breaker, or an operator fail-fast policy).
  kRejected,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: a code plus an optional message.
///
/// Statuses are cheap to copy in the OK case (empty message string).
/// Typical use:
///
/// \code
///   Status s = parser.Parse(text, &doc);
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status XmlParseError(std::string msg) {
    return Status(StatusCode::kXmlParseError, std::move(msg));
  }
  static Status XPathParseError(std::string msg) {
    return Status(StatusCode::kXPathParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Rejected(std::string msg) {
    return Status(StatusCode::kRejected, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error Status.
///
/// Analogous to arrow::Result / absl::StatusOr. Accessing the value of an
/// errored Result is a programming error (checked with assert in debug
/// builds).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding \p value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an errored result. \p status must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if ok, otherwise \p fallback.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from the evaluated expression.
#define XPRED_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::xpred::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace xpred

#endif  // XPRED_COMMON_STATUS_H_
