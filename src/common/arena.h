#ifndef XPRED_COMMON_ARENA_H_
#define XPRED_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace xpred {

/// \brief Bump allocator for long-lived, never-individually-freed
/// objects (NFA states, trie nodes, interned strings).
///
/// Millions of stored expressions produce millions of small index nodes;
/// allocating them from an arena keeps them dense in memory and makes
/// teardown O(#blocks). The arena is not thread-safe; each engine owns
/// one.
class Arena {
 public:
  /// \param block_size size in bytes of each backing block.
  explicit Arena(size_t block_size = 64 * 1024)
      : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates \p bytes with the given alignment (must be a power of
  /// two). The memory lives until the arena is destroyed.
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t)) {
    size_t pos = Align(pos_, alignment);
    if (blocks_.empty() || pos + bytes > current_capacity_) {
      NewBlock(bytes, alignment);
      pos = Align(pos_, alignment);
    }
    void* result = blocks_.back().get() + pos;
    pos_ = pos + bytes;
    bytes_used_ += bytes;
    return result;
  }

  /// Constructs a T in arena memory. T must be trivially destructible
  /// (its destructor is never run).
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  /// Copies \p data into the arena and returns a view of the copy.
  const char* CopyString(const char* data, size_t size) {
    char* mem = static_cast<char*>(Allocate(size + 1, 1));
    std::copy(data, data + size, mem);
    mem[size] = '\0';
    return mem;
  }

  /// Discards all allocations but keeps the most recent (largest)
  /// block for reuse, so a per-document scratch arena settles into a
  /// steady state with zero allocations after the first document.
  /// Everything previously handed out becomes dangling.
  void Reset() {
    if (blocks_.size() > 1) {
      std::unique_ptr<char[]> keep = std::move(blocks_.back());
      blocks_.clear();
      blocks_.push_back(std::move(keep));
      bytes_reserved_ = current_capacity_;
    }
    pos_ = 0;
    bytes_used_ = 0;
  }

  /// Total payload bytes handed out (excluding block slack).
  size_t bytes_used() const { return bytes_used_; }

  /// Total bytes reserved from the system.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  static size_t Align(size_t pos, size_t alignment) {
    return (pos + alignment - 1) & ~(alignment - 1);
  }

  void NewBlock(size_t min_bytes, size_t alignment) {
    size_t size = block_size_;
    // Oversized requests get a dedicated block.
    if (min_bytes + alignment > size) size = min_bytes + alignment;
    blocks_.push_back(std::make_unique<char[]>(size));
    current_capacity_ = size;
    pos_ = 0;
    bytes_reserved_ += size;
  }

  size_t block_size_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t current_capacity_ = 0;
  size_t pos_ = 0;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace xpred

#endif  // XPRED_COMMON_ARENA_H_
