#ifndef XPRED_COMMON_INTERNER_H_
#define XPRED_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xpred {

/// Dense id assigned to an interned string. Ids start at 0 and are
/// assigned in first-seen order.
using SymbolId = uint32_t;

/// Sentinel for "no symbol".
inline constexpr SymbolId kInvalidSymbol = UINT32_MAX;

/// \brief Maps strings (element / attribute names) to dense integer ids.
///
/// All hot data structures (predicate index, NFA transition tables,
/// publications) key on SymbolId instead of strings, so string hashing
/// happens once per distinct name, at insertion / parse time.
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the id for \p name, interning it if necessary.
  SymbolId Intern(std::string_view name);

  /// Returns the id for \p name, or kInvalidSymbol if it was never
  /// interned. Never allocates — safe for document-side lookups where
  /// unknown tags simply cannot match any predicate.
  SymbolId Lookup(std::string_view name) const;

  /// Returns the string for \p id. Requires a valid id.
  std::string_view Name(SymbolId id) const { return names_[id]; }

  /// Number of distinct interned strings.
  size_t size() const { return names_.size(); }

  /// Approximate heap bytes (names plus the lookup table).
  size_t ApproximateMemoryBytes() const;

 private:
  std::unordered_map<std::string, SymbolId> index_;
  std::vector<std::string> names_;
};

}  // namespace xpred

#endif  // XPRED_COMMON_INTERNER_H_
