#ifndef XPRED_COMMON_HASH_H_
#define XPRED_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace xpred {

/// \brief FNV-1a 64-bit hash of a byte string.
///
/// Used for tag-name keys in the predicate index and for interning
/// tables. FNV-1a is small, deterministic, and good enough for short
/// element-name keys; hot lookups are by interned integer id, not by
/// string hash.
inline uint64_t Fnv1a(std::string_view data,
                      uint64_t seed = 0xCBF29CE484222325ULL) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// \brief Mixes two 64-bit hashes (boost::hash_combine style, 64-bit
/// constants).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  a ^= b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4);
  return a;
}

}  // namespace xpred

#endif  // XPRED_COMMON_HASH_H_
