#ifndef XPRED_COMMON_FAULT_INJECTION_H_
#define XPRED_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace xpred {

/// \brief Canonical registry of fault-injection site names.
///
/// Every XPRED_FAULT_POINT / FaultInjector call-site in the library
/// names one of these constants; tests and the chaos harness refer to
/// them symbolically, and scripts/check_limits_doc.py parses this
/// namespace to verify DESIGN.md documents each site. Add new sites
/// here (and to DESIGN.md §11), never as inline string literals.
namespace faultsite {

/// SaxParser::Parse entry, before any input is consumed.
inline constexpr std::string_view kParserBeginDocument =
    "parser.begin_document";
/// Entity / character-reference decoding inside text and attributes.
inline constexpr std::string_view kParserDecodeText = "parser.decode_text";
/// Raw document text before parsing; supports input truncation.
inline constexpr std::string_view kParserInput = "parser.input";
/// FilterEngine document-window start (FilterXml / BeginGoverned).
inline constexpr std::string_view kEngineBeginDocument =
    "engine.begin_document";
/// Path-string encoding in the Matcher front end.
inline constexpr std::string_view kEncoderEncodePath = "encoder.encode_path";
/// Matcher per-path processing loop.
inline constexpr std::string_view kMatcherProcessPath = "matcher.process_path";
/// YFilter NFA document traversal.
inline constexpr std::string_view kYFilterTraverse = "yfilter.traverse";
/// XFilter per-element FSM dispatch.
inline constexpr std::string_view kXFilterElement = "xfilter.element";
/// IndexFilter interval-index construction (index maintenance).
inline constexpr std::string_view kIndexFilterBuildIndex =
    "indexfilter.build_index";
/// StreamingFilter SAX start-element callback.
inline constexpr std::string_view kStreamingStartElement =
    "streaming.start_element";
/// SubscriptionWal record append, before the frame write. A firing
/// rule simulates a kill mid-write: half the frame reaches the disk
/// (a torn tail for recovery to salvage) and the log goes dead.
inline constexpr std::string_view kStorageWalWrite = "storage.wal.write";
/// SubscriptionWal fsync (policy-driven or explicit Sync). The record
/// bytes are already written when this fires; only the durability
/// barrier is lost, and the log goes dead.
inline constexpr std::string_view kStorageWalFsync = "storage.wal.fsync";
/// SnapshotWriter, between the synced .tmp file and the rename into
/// place — the crash window the write-temp-fsync-rename protocol
/// exists for.
inline constexpr std::string_view kStorageSnapshotRename =
    "storage.snapshot.rename";

}  // namespace faultsite

/// \brief Seeded, deterministic fault injector for chaos testing.
///
/// A FaultInjector holds a set of rules keyed by injection-site name.
/// Library code consults it at the same cooperative checkpoints used
/// for resource governance, via XPRED_FAULT_POINT(site) — a macro that
/// compiles to a single null-pointer test when no injector is
/// installed, and to nothing at all under
/// -DXPRED_DISABLE_FAULT_INJECTION.
///
/// Determinism: each site keeps a visit counter; a rule fires when
/// `visit >= offset && (visit - offset) % period == 0` AND a hash of
/// (seed, site, visit) clears the rule's probability. Two runs with
/// the same seed, rules, and workload therefore produce byte-identical
/// failure sequences (verifiable via journal()).
///
/// Not thread-safe: install/uninstall and rule edits must not race
/// with filtering. The injector is a test-only facility.
class FaultInjector {
 public:
  enum class FaultKind {
    /// The checkpoint returns the rule's Status code.
    kStatusFailure,
    /// The checkpoint returns kDeadlineExceeded, simulating wall-clock
    /// expiry without waiting for it.
    kDeadlineExpiry,
    /// Truncation sites (faultsite::kParserInput) trim the input to
    /// `truncate_to` bytes before parsing.
    kTruncateInput,
    /// The checkpoint calls std::abort() after journaling the firing
    /// (and notifying the fault observer), for crash-handler e2e
    /// tests. The process dies with SIGABRT; the crash handler's
    /// diagnostic bundle is the observable output.
    kAbort,
  };

  struct Rule {
    std::string site;
    FaultKind kind = FaultKind::kStatusFailure;
    /// Status code for kStatusFailure rules.
    StatusCode code = StatusCode::kInternal;
    /// Optional custom message; defaults to a generated one naming the
    /// site and visit index.
    std::string message;
    /// Fire on every period-th visit to the site...
    uint64_t period = 1;
    /// ...starting with visit index `offset` (0-based).
    uint64_t offset = 0;
    /// Additional seeded coin-flip: 1.0 = always (fully deterministic
    /// in period/offset alone), 0.0 = never.
    double probability = 1.0;
    /// For kTruncateInput: keep this many leading bytes.
    size_t truncate_to = 0;
  };

  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }
  /// Clears visit counters and the journal; rules and seed persist.
  void Reset() {
    visits_.clear();
    journal_.clear();
  }

  /// Status-checkpoint evaluation: advances the site's visit counter
  /// and returns the first firing kStatusFailure/kDeadlineExpiry
  /// rule's Status (OK when nothing fires). Every fired fault is
  /// appended to journal().
  Status Check(std::string_view site);

  /// Truncation-site evaluation: advances the site's visit counter; if
  /// a kTruncateInput rule fires, trims \p *text to the rule's
  /// truncate_to bytes and returns true.
  bool MaybeTruncate(std::string_view site, std::string_view* text);

  /// One line per fired fault: "<site>#<visit> <kind> <code-or-bytes>".
  /// Byte-identical across runs with equal seed, rules, and workload.
  const std::vector<std::string>& journal() const { return journal_; }
  uint64_t visits(std::string_view site) const;
  uint64_t seed() const { return seed_; }

  /// Installs \p injector (not owned; nullptr uninstalls) as the
  /// process-global injector consulted by XPRED_FAULT_POINT.
  static void Install(FaultInjector* injector);
  static FaultInjector* Installed();

 private:
  /// Seeded coin flip, deterministic in (seed, site, visit).
  bool CoinFlip(std::string_view site, uint64_t visit,
                double probability) const;
  /// True when \p rule fires at \p visit of \p site.
  bool Fires(const Rule& rule, std::string_view site, uint64_t visit) const;

  uint64_t seed_;
  std::vector<Rule> rules_;
  std::unordered_map<std::string, uint64_t> visits_;
  std::vector<std::string> journal_;
};

namespace detail {
/// Global injector pointer; nullptr (the default) makes every fault
/// point a single predictable branch.
inline FaultInjector* g_fault_injector = nullptr;
/// Optional observer notified of every fired fault (site, visit).
/// Set by obs::FlightRecorder::Install so injected faults land in the
/// flight-recorder journal without common depending on obs. Must be
/// wired while no filtering is running (same contract as Install).
inline void (*g_fault_observer)(std::string_view site,
                                uint64_t visit) = nullptr;
}  // namespace detail

inline FaultInjector* FaultInjector::Installed() {
  return detail::g_fault_injector;
}
inline void FaultInjector::Install(FaultInjector* injector) {
  detail::g_fault_injector = injector;
}

/// Cooperative fault checkpoint: returns the injected Status from the
/// enclosing function when an installed injector fires at \p site.
/// Expands to nothing when fault injection is compiled out.
#ifdef XPRED_DISABLE_FAULT_INJECTION
#define XPRED_FAULT_POINT(site) \
  do {                          \
  } while (0)
#else
#define XPRED_FAULT_POINT(site)                                       \
  do {                                                                \
    if (::xpred::detail::g_fault_injector != nullptr) [[unlikely]] {  \
      ::xpred::Status _xpred_fault_status =                           \
          ::xpred::detail::g_fault_injector->Check(site);             \
      if (!_xpred_fault_status.ok()) return _xpred_fault_status;      \
    }                                                                 \
  } while (0)
#endif

}  // namespace xpred

#endif  // XPRED_COMMON_FAULT_INJECTION_H_
