#ifndef XPRED_COMMON_MEMORY_USAGE_H_
#define XPRED_COMMON_MEMORY_USAGE_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace xpred {

/// \brief Heap-size approximations for container-heavy index
/// structures (RocksDB's ApproximateMemoryUsage idiom).
///
/// These are estimates: they count the containers' backing storage and
/// per-node overheads, not allocator slack. Used to report
/// bytes-per-expression scaling for engines holding millions of XPEs.

/// Bytes behind a vector's backing array (element payload only; use
/// the Deep variants when elements own memory).
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Bytes behind a string's heap buffer (0 when SSO applies). A string
/// is on the heap exactly when its capacity exceeds the SSO capacity
/// (what a default-constructed string reports), and the allocation is
/// capacity() + 1 bytes — capacity() excludes the terminating NUL the
/// buffer still stores.
inline size_t StringBytes(const std::string& s) {
  static const size_t sso_capacity = std::string().capacity();
  return s.capacity() > sso_capacity ? s.capacity() + 1 : 0;
}

/// Bytes behind a vector of vectors.
template <typename T>
size_t NestedVectorBytes(const std::vector<std::vector<T>>& v) {
  size_t total = VectorBytes(v);
  for (const std::vector<T>& inner : v) total += VectorBytes(inner);
  return total;
}

/// Approximate per-node overhead of the libstdc++ unordered
/// containers: one forward pointer per node plus the bucket array.
template <typename Map>
size_t UnorderedOverheadBytes(const Map& m) {
  return m.bucket_count() * sizeof(void*) + m.size() * 2 * sizeof(void*);
}

/// Bytes of an unordered_map whose mapped values are vectors.
template <typename K, typename T>
size_t MapOfVectorsBytes(const std::unordered_map<K, std::vector<T>>& m) {
  size_t total = UnorderedOverheadBytes(m);
  for (const auto& [key, value] : m) {
    total += sizeof(key) + sizeof(value) + VectorBytes(value);
  }
  return total;
}

}  // namespace xpred

#endif  // XPRED_COMMON_MEMORY_USAGE_H_
