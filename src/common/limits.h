#ifndef XPRED_COMMON_LIMITS_H_
#define XPRED_COMMON_LIMITS_H_

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace xpred {

/// \brief Resource-governance knobs for document ingestion.
///
/// The paper assumes a well-behaved document stream; a production
/// filtering service does not get that luxury — a single adversarial
/// document (pathological depth, entity bombs, millions of
/// root-to-leaf paths) must not blow the stack, exhaust memory, or
/// stall the matcher for every other subscriber. Every knob uses
/// 0 = unlimited; a violated limit is reported as a
/// StatusCode::kResourceExhausted (never a crash or silent
/// truncation), and an expired deadline as
/// StatusCode::kDeadlineExceeded.
///
/// The default-constructed value preserves the engine's historical
/// behavior: only the element-depth guard (512, the old SaxParser
/// default) is active.
struct ResourceLimits {
  /// Maximum accepted XML text size, checked before parsing.
  size_t max_document_bytes = 0;
  /// Maximum element nesting depth. The recursive automaton baselines
  /// (YFilter/XFilter traversal, the XPath oracle) consume native
  /// stack proportional to this; keep it well under ~10k for them.
  /// The SAX parser, path extractor, and Matcher are fully iterative
  /// and handle 100k+ when raised.
  size_t max_element_depth = 512;
  /// Maximum attributes on a single element.
  size_t max_attributes_per_element = 0;
  /// Maximum root-to-leaf paths extracted per document (a recursive
  /// DTD can yield exponentially many).
  size_t max_extracted_paths = 0;
  /// Maximum entity/character references expanded per document.
  size_t max_entity_expansions = 0;
  /// Soft wall-clock deadline per document in milliseconds (checked at
  /// cooperative checkpoints; granularity is a few hundred hot-loop
  /// iterations).
  double deadline_ms = 0;

  /// Every guard off (fuzzing the guards themselves, benchmarks).
  static ResourceLimits Unlimited() {
    ResourceLimits limits;
    limits.max_element_depth = 0;
    return limits;
  }

  /// Opinionated production defaults for an engine facing untrusted
  /// traffic (documented in DESIGN.md §11).
  static ResourceLimits Production() {
    ResourceLimits limits;
    limits.max_document_bytes = 64ull << 20;  // 64 MiB
    limits.max_element_depth = 512;
    limits.max_attributes_per_element = 256;
    limits.max_extracted_paths = 1u << 20;  // ~1M paths
    limits.max_entity_expansions = 1u << 20;
    limits.deadline_ms = 1000;
    return limits;
  }

  bool any_enabled() const {
    return max_document_bytes != 0 || max_element_depth != 0 ||
           max_attributes_per_element != 0 || max_extracted_paths != 0 ||
           max_entity_expansions != 0 || deadline_ms != 0;
  }
};

/// \brief Per-document execution budget: the enforcement half of
/// ResourceLimits.
///
/// An ExecBudget is armed once per document (stamping the deadline and
/// zeroing the consumption counters) and then consulted at cooperative
/// checkpoints. Checkpoints are cheap enough for hot loops: limit
/// checks are integer compares that short-circuit when the knob is 0,
/// and the deadline checkpoint amortizes the clock read over
/// kDeadlineStride calls. All checks return Status so violations
/// propagate through the normal error channel.
class ExecBudget {
 public:
  /// Clock reads per deadline checkpoint: one in kDeadlineStride.
  static constexpr uint32_t kDeadlineStride = 256;

  ExecBudget() = default;

  /// Starts a document window: records \p limits, zeroes counters, and
  /// stamps the deadline.
  void Arm(const ResourceLimits& limits);
  void Disarm() { armed_ = false; }
  bool armed() const { return armed_; }
  const ResourceLimits& limits() const { return limits_; }

  /// \name Checkpoints
  /// Each returns OK when the corresponding knob is 0 (unlimited) or
  /// the budget is disarmed.
  ///@{
  Status CheckDocumentBytes(size_t bytes) const;
  Status CheckDepth(size_t depth) const;
  Status CheckAttributeCount(size_t count) const;
  /// Counting checkpoint: consumes one extracted path.
  Status AddPath();
  /// Counting checkpoint: consumes \p n entity expansions.
  Status AddEntityExpansions(size_t n);
  /// Amortized deadline checkpoint for hot loops.
  Status CheckDeadline() {
    if (!armed_ || !has_deadline_) return Status::OK();
    if (++deadline_calls_ % kDeadlineStride != 0 && !deadline_forced_) {
      return Status::OK();
    }
    return CheckDeadlineNow();
  }
  /// Unamortized deadline check (document boundaries).
  Status CheckDeadlineNow();
  ///@}

  uint64_t paths() const { return paths_; }
  uint64_t entity_expansions() const { return entity_expansions_; }

  /// Fault-injection hook: the next deadline checkpoint fails as if
  /// the wall clock had expired (cleared by the next Arm()).
  void ForceDeadlineExpiry() {
    deadline_forced_ = true;
    has_deadline_ = true;
  }

 private:
  ResourceLimits limits_;
  bool armed_ = false;
  bool has_deadline_ = false;
  bool deadline_forced_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  uint64_t paths_ = 0;
  uint64_t entity_expansions_ = 0;
  uint64_t deadline_calls_ = 0;
};

}  // namespace xpred

#endif  // XPRED_COMMON_LIMITS_H_
