#include "common/fault_injection.h"

#include <cstdlib>

namespace xpred {

namespace {

/// SplitMix64 — small, well-distributed, dependency-free hash step.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashSite(std::string_view site) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

const char* KindName(FaultInjector::FaultKind kind) {
  switch (kind) {
    case FaultInjector::FaultKind::kStatusFailure:
      return "status";
    case FaultInjector::FaultKind::kDeadlineExpiry:
      return "deadline";
    case FaultInjector::FaultKind::kTruncateInput:
      return "truncate";
    case FaultInjector::FaultKind::kAbort:
      return "abort";
  }
  return "unknown";
}

void NotifyObserver(std::string_view site, uint64_t visit) {
  if (detail::g_fault_observer != nullptr) {
    detail::g_fault_observer(site, visit);
  }
}

}  // namespace

bool FaultInjector::CoinFlip(std::string_view site, uint64_t visit,
                             double probability) const {
  if (probability >= 1.0) return true;
  if (probability <= 0.0) return false;
  uint64_t h = Mix64(seed_ ^ Mix64(HashSite(site) ^ Mix64(visit)));
  // Top 53 bits -> uniform double in [0, 1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < probability;
}

bool FaultInjector::Fires(const Rule& rule, std::string_view site,
                          uint64_t visit) const {
  if (rule.site != site) return false;
  if (visit < rule.offset) return false;
  if (rule.period == 0) return false;
  if ((visit - rule.offset) % rule.period != 0) return false;
  return CoinFlip(site, visit, rule.probability);
}

Status FaultInjector::Check(std::string_view site) {
  uint64_t visit = visits_[std::string(site)]++;
  for (const Rule& rule : rules_) {
    if (rule.kind == FaultKind::kTruncateInput) continue;
    if (!Fires(rule, site, visit)) continue;
    if (rule.kind == FaultKind::kAbort) {
      std::string entry(site);
      entry += "#";
      entry += std::to_string(visit);
      entry += " ";
      entry += KindName(rule.kind);
      entry += " SIGABRT";
      journal_.push_back(std::move(entry));
      NotifyObserver(site, visit);
      std::abort();
    }
    Status status;
    if (rule.kind == FaultKind::kDeadlineExpiry) {
      std::string msg = rule.message;
      if (msg.empty()) {
        msg = "injected deadline expiry at ";
        msg += site;
      }
      status = Status::DeadlineExceeded(std::move(msg));
    } else {
      std::string msg = rule.message;
      if (msg.empty()) {
        msg = "injected fault at ";
        msg += site;
        msg += " (visit ";
        msg += std::to_string(visit);
        msg += ")";
      }
      status = Status(rule.code, std::move(msg));
    }
    std::string entry(site);
    entry += "#";
    entry += std::to_string(visit);
    entry += " ";
    entry += KindName(rule.kind);
    entry += " ";
    entry += StatusCodeToString(status.code());
    journal_.push_back(std::move(entry));
    NotifyObserver(site, visit);
    return status;
  }
  return Status::OK();
}

bool FaultInjector::MaybeTruncate(std::string_view site,
                                 std::string_view* text) {
  uint64_t visit = visits_[std::string(site)]++;
  for (const Rule& rule : rules_) {
    if (rule.kind != FaultKind::kTruncateInput) continue;
    if (!Fires(rule, site, visit)) continue;
    if (rule.truncate_to < text->size()) {
      *text = text->substr(0, rule.truncate_to);
    }
    std::string entry(site);
    entry += "#";
    entry += std::to_string(visit);
    entry += " ";
    entry += KindName(rule.kind);
    entry += " ";
    entry += std::to_string(text->size());
    journal_.push_back(std::move(entry));
    NotifyObserver(site, visit);
    return true;
  }
  return false;
}

uint64_t FaultInjector::visits(std::string_view site) const {
  auto it = visits_.find(std::string(site));
  return it == visits_.end() ? 0 : it->second;
}

}  // namespace xpred
