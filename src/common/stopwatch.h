#ifndef XPRED_COMMON_STOPWATCH_H_
#define XPRED_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace xpred {

/// \brief Monotonic stopwatch used for the per-stage cost breakdown
/// reported by the matcher (paper §6.5) and by the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }

  /// Microseconds elapsed since construction or the last Reset().
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xpred

#endif  // XPRED_COMMON_STOPWATCH_H_
