#ifndef XPRED_STORAGE_SNAPSHOT_H_
#define XPRED_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace xpred::storage {

/// \brief A full checkpoint of the subscription table at an epoch
/// boundary: every issued global sid in order, live or dead, with its
/// expression. Dead sids are kept because global sid assignment is
/// dense and deterministic — replaying the entries (subscribe all,
/// then unsubscribe the dead) into a fresh `core::IndexEpochManager`
/// reproduces identical sids, partition routing, and match sets.
struct SnapshotData {
  struct Entry {
    uint64_t sid = 0;
    bool live = false;
    std::string xpath;
  };
  uint64_t epoch = 0;     ///< Published epoch the checkpoint reflects.
  uint64_t last_seq = 0;  ///< Durable WAL seq covered; replay resumes after.
  std::vector<Entry> entries;  ///< Dense: entries[i].sid == i.
};

/// \brief Atomic checkpoint writer (DESIGN.md §16).
///
/// File format (`snapshot-<lastseq:016x>.xsnap`, little-endian):
///
///   magic "XPSNAP01", u64 epoch, u64 last_seq, u64 entry_count,
///   entry_count x { u64 sid, u8 live, u32 xpath_len, xpath bytes },
///   u32 masked CRC32C over everything before it.
///
/// Atomicity protocol: serialize to `<name>.tmp`, fsync the file,
/// rename() into place (the injection point `storage.snapshot.rename`
/// models a crash here), fsync the directory. A reader therefore sees
/// either the complete old state or the complete new file — never a
/// partial snapshot under the final name. Stale `.tmp` files are
/// ignored by the loader and overwritten by the next checkpoint.
class SnapshotWriter {
 public:
  /// Writes \p data under \p directory; returns the final path.
  static Result<std::string> Write(const std::string& directory,
                                   const SnapshotData& data);
};

/// \brief Loads the newest uncorrupted snapshot in a directory.
struct LoadedSnapshot {
  SnapshotData data;
  std::string path;
};

class SnapshotLoader {
 public:
  /// Scans `snapshot-*.xsnap` newest-first, returning the first one
  /// whose CRC verifies. Corrupt candidates are renamed
  /// `<name>.quarantined` and counted in \p quarantined_out (they will
  /// never be retried); \p max_quarantined_seq_out (optional) receives
  /// the highest covered seq any quarantined file *claimed* in its
  /// name, so recovery can prove the fallback state is not behind a
  /// checkpoint that once existed. std::nullopt when no valid snapshot
  /// exists — recovery then replays the WAL from seq 1.
  static Result<std::optional<LoadedSnapshot>> LoadNewest(
      const std::string& directory, uint64_t* quarantined_out,
      uint64_t* max_quarantined_seq_out = nullptr);

  /// Parses + verifies one snapshot file (exposed for tests).
  static Result<SnapshotData> LoadFile(const std::string& path);

  /// Deletes all but the newest \p keep valid snapshot files.
  static Result<size_t> PruneOld(const std::string& directory, size_t keep);

  /// Covered seq (from the file name) of the oldest snapshot still on
  /// disk, or std::nullopt when none exist. Checkpoints compact the
  /// WAL only through this seq, keeping every retained snapshot
  /// replayable should a newer one turn out corrupt at recovery.
  static Result<std::optional<uint64_t>> OldestRetainedSeq(
      const std::string& directory);
};

}  // namespace xpred::storage

#endif  // XPRED_STORAGE_SNAPSHOT_H_
