#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/fault_injection.h"
#include "obs/flight_recorder.h"
#include "storage/crc32c.h"

namespace xpred::storage {

namespace {

constexpr std::string_view kSegmentMagic = "XPWAL001";
constexpr size_t kSegmentHeaderBytes = 8 + 8 + 4;  // magic, base_seq, crc.
constexpr size_t kFrameHeaderBytes = 4 + 4;        // masked crc, payload len.
/// Frames larger than this are corruption by definition: the longest
/// legitimate payload is one subscribe record, and expressions are
/// capped far below this by core::Matcher's limits.
constexpr size_t kMaxPayloadBytes = 1u << 20;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(std::string_view in, size_t at) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[at])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[at + 1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[at + 2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[at + 3])) << 24;
}

uint64_t GetU64(std::string_view in, size_t at) {
  return static_cast<uint64_t>(GetU32(in, at)) |
         static_cast<uint64_t>(GetU32(in, at + 4)) << 32;
}

std::string SegmentName(uint64_t base_seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%016llx.xwal",
                static_cast<unsigned long long>(base_seq));
  return name;
}

/// True for "wal-<16 hex>.xwal"; \p base_out receives the base seq.
bool ParseSegmentName(const std::string& name, uint64_t* base_out) {
  if (name.size() != 4 + 16 + 5) return false;
  if (name.rfind("wal-", 0) != 0) return false;
  if (name.compare(20, 5, ".xwal") != 0) return false;
  uint64_t base = 0;
  for (size_t i = 4; i < 20; ++i) {
    char c = name[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    base = (base << 4) | digit;
  }
  *base_out = base;
  return true;
}

std::string EncodeSegmentHeader(uint64_t base_seq) {
  std::string out;
  out.append(kSegmentMagic);
  PutU64(&out, base_seq);
  PutU32(&out, MaskCrc32c(Crc32c(out)));
  return out;
}

Status FsyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("open(dir) for fsync failed: " + dir + ": " +
                            std::strerror(errno));
  }
  int rc = ::fsync(fd);
  int saved = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync(dir) failed: " + dir + ": " +
                            std::strerror(saved));
  }
  return Status::OK();
}

/// Sorted (base_seq, path) of every live segment under \p dir.
std::vector<std::pair<uint64_t, std::string>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return segments;
  for (const auto& entry : it) {
    uint64_t base = 0;
    if (ParseSegmentName(entry.path().filename().string(), &base)) {
      segments.emplace_back(base, entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

Status QuarantineFile(const std::string& path, uint64_t* count) {
  std::error_code ec;
  std::filesystem::rename(path, path + ".quarantined", ec);
  if (ec) {
    return Status::Internal("cannot quarantine " + path + ": " +
                            ec.message());
  }
  ++*count;
  return Status::OK();
}

/// Decodes one frame at \p at; returns false (without touching
/// \p record) when the bytes are torn or corrupt. \p end_out receives
/// the offset one past the frame on success.
bool DecodeFrame(std::string_view data, size_t at, WalRecord* record,
                 size_t* end_out) {
  if (data.size() - at < kFrameHeaderBytes) return false;
  uint32_t stored = UnmaskCrc32c(GetU32(data, at));
  uint32_t len = GetU32(data, at + 4);
  if (len < 1 + 8 || len > kMaxPayloadBytes) return false;
  if (data.size() - at - kFrameHeaderBytes < len) return false;
  std::string_view checked = data.substr(at + 4, 4 + len);
  if (Crc32c(checked) != stored) return false;
  std::string_view payload = data.substr(at + kFrameHeaderBytes, len);
  WalRecord rec;
  rec.kind = static_cast<WalRecord::Kind>(payload[0]);
  rec.seq = GetU64(payload, 1);
  switch (rec.kind) {
    case WalRecord::Kind::kSubscribe: {
      if (len < 1 + 8 + 8 + 4) return false;
      rec.sid = GetU64(payload, 9);
      uint32_t xlen = GetU32(payload, 17);
      if (len != 1 + 8 + 8 + 4 + xlen) return false;
      rec.xpath.assign(payload.substr(21, xlen));
      break;
    }
    case WalRecord::Kind::kUnsubscribe:
      if (len != 1 + 8 + 8) return false;
      rec.sid = GetU64(payload, 9);
      break;
    case WalRecord::Kind::kEpochMark:
      if (len != 1 + 8 + 8) return false;
      rec.epoch = GetU64(payload, 9);
      break;
    default:
      return false;
  }
  *record = std::move(rec);
  *end_out = at + kFrameHeaderBytes + len;
  return true;
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(record.kind));
  PutU64(&payload, record.seq);
  switch (record.kind) {
    case WalRecord::Kind::kSubscribe:
      PutU64(&payload, record.sid);
      PutU32(&payload, static_cast<uint32_t>(record.xpath.size()));
      payload.append(record.xpath);
      break;
    case WalRecord::Kind::kUnsubscribe:
      PutU64(&payload, record.sid);
      break;
    case WalRecord::Kind::kEpochMark:
      PutU64(&payload, record.epoch);
      break;
  }
  std::string checked;
  PutU32(&checked, static_cast<uint32_t>(payload.size()));
  checked.append(payload);
  std::string frame;
  PutU32(&frame, MaskCrc32c(Crc32c(checked)));
  frame.append(checked);
  return frame;
}

std::string_view FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kEveryPublish:
      return "publish";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name) {
  if (name == "never") return FsyncPolicy::kNever;
  if (name == "publish") return FsyncPolicy::kEveryPublish;
  if (name == "always") return FsyncPolicy::kAlways;
  return Status::InvalidArgument("unknown fsync policy: " +
                                 std::string(name) +
                                 " (want never|publish|always)");
}

SubscriptionWal::SubscriptionWal(const Options& options)
    : options_(options) {}

SubscriptionWal::~SubscriptionWal() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<SubscriptionWal>> SubscriptionWal::Open(
    const Options& options, uint64_t next_seq) {
  if (options.directory.empty()) {
    return Status::InvalidArgument("SubscriptionWal needs a directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.directory, ec);
  if (ec) {
    return Status::Internal("cannot create WAL directory " +
                            options.directory + ": " + ec.message());
  }
  std::unique_ptr<SubscriptionWal> wal(new SubscriptionWal(options));
  wal->next_seq_ = next_seq;
  XPRED_RETURN_NOT_OK(wal->OpenSegment(next_seq));
  return wal;
}

Status SubscriptionWal::OpenSegment(uint64_t base_seq) {
  segment_path_ = options_.directory + "/" + SegmentName(base_seq);
  // O_TRUNC: the only way this name already exists is a previous
  // process that opened a segment here and crashed before its first
  // durable record — recovery proved seq base_seq-1 is the durable
  // frontier, so the stale file holds nothing salvageable.
  fd_ = ::open(segment_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    return Status::Internal("cannot create WAL segment " + segment_path_ +
                            ": " + std::strerror(errno));
  }
  segment_written_ = 0;
  ++segments_created_;
  XPRED_RETURN_NOT_OK(WriteFully(EncodeSegmentHeader(base_seq)));
  // The segment must be findable after a crash before any record in it
  // can be considered durable.
  XPRED_RETURN_NOT_OK(FsyncDirectory(options_.directory));
  return Status::OK();
}

Status SubscriptionWal::WriteFully(std::string_view bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      alive_ = false;
      return Status::Internal("WAL write failed: " + segment_path_ + ": " +
                              std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  segment_written_ += bytes.size();
  return Status::OK();
}

Status SubscriptionWal::FsyncNow() {
#ifndef XPRED_DISABLE_FAULT_INJECTION
  if (FaultInjector* injector = FaultInjector::Installed();
      injector != nullptr) {
    Status injected = injector->Check(faultsite::kStorageWalFsync);
    if (!injected.ok()) {
      // The record bytes are written (they survive a process crash);
      // only the sync guarantee is lost — exactly a die-at-fsync.
      alive_ = false;
      return injected;
    }
  }
#endif
  if (::fsync(fd_) != 0) {
    alive_ = false;
    return Status::Internal("WAL fsync failed: " + segment_path_ + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status SubscriptionWal::Append(const WalRecord& record) {
  if (!alive_) {
    return Status::Rejected(
        "WAL is dead after an earlier write/fsync failure");
  }
  if (record.seq != next_seq_) {
    return Status::Internal("WAL append out of sequence: got " +
                            std::to_string(record.seq) + ", want " +
                            std::to_string(next_seq_));
  }
  std::string frame = EncodeWalRecord(record);
  if (segment_written_ + frame.size() > options_.segment_bytes &&
      segment_written_ > kSegmentHeaderBytes) {
    XPRED_RETURN_NOT_OK(CloseSegment());
    XPRED_RETURN_NOT_OK(OpenSegment(record.seq));
    XPRED_RECORD_EVENT(obs::EventType::kWalRotate, record.seq,
                       segments_created_);
  }
#ifndef XPRED_DISABLE_FAULT_INJECTION
  if (FaultInjector* injector = FaultInjector::Installed();
      injector != nullptr) {
    Status injected = injector->Check(faultsite::kStorageWalWrite);
    if (!injected.ok()) {
      // Simulated kill mid-write: tear the frame (half of it reaches
      // the disk) and poison the log. Recovery must salvage up to the
      // previous record and truncate this tail.
      (void)WriteFully(std::string_view(frame).substr(0, frame.size() / 2));
      alive_ = false;
      return injected;
    }
  }
#endif
  XPRED_RETURN_NOT_OK(WriteFully(frame));
  ++next_seq_;
  if (options_.fsync == FsyncPolicy::kAlways ||
      (options_.fsync == FsyncPolicy::kEveryPublish &&
       record.kind == WalRecord::Kind::kEpochMark)) {
    XPRED_RETURN_NOT_OK(FsyncNow());
  }
  return Status::OK();
}

Status SubscriptionWal::Sync() {
  if (!alive_) {
    return Status::Rejected(
        "WAL is dead after an earlier write/fsync failure");
  }
  return FsyncNow();
}

Status SubscriptionWal::CloseSegment() {
  if (fd_ < 0) return Status::OK();
  // A rotated-away segment is immutable history; sync it regardless of
  // policy so compaction decisions never race ahead of the disk.
  Status synced = FsyncNow();
  ::close(fd_);
  fd_ = -1;
  return synced;
}

Result<size_t> SubscriptionWal::RotateAndCompact(uint64_t next_seq,
                                                 uint64_t through_seq) {
  if (!alive_) {
    return Status::Rejected(
        "WAL is dead after an earlier write/fsync failure");
  }
  if (next_seq != next_seq_) {
    return Status::Internal("WAL rotate out of sequence");
  }
  XPRED_RETURN_NOT_OK(CloseSegment());

  // A segment is fully covered by the checkpoint iff every record in
  // it has seq <= through_seq, i.e. the *next* segment's base (or, for
  // the last one, next_seq_) is <= through_seq + 1.
  std::vector<std::pair<uint64_t, std::string>> segments =
      ListSegments(options_.directory);
  size_t removed = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    uint64_t first_after = (i + 1 < segments.size()) ? segments[i + 1].first
                                                     : next_seq_;
    if (first_after <= through_seq + 1) {
      std::error_code ec;
      std::filesystem::remove(segments[i].second, ec);
      if (ec) {
        return Status::Internal("cannot remove compacted segment " +
                                segments[i].second + ": " + ec.message());
      }
      ++removed;
    }
  }
  XPRED_RETURN_NOT_OK(OpenSegment(next_seq));
  XPRED_RECORD_EVENT(obs::EventType::kWalRotate, next_seq,
                     segments_created_);
  return removed;
}

Result<size_t> SubscriptionWal::SegmentCount() const {
  return ListSegments(options_.directory).size();
}

Result<WalScanResult> ScanWal(const std::string& directory,
                              uint64_t after_seq) {
  WalScanResult result;
  std::vector<std::pair<uint64_t, std::string>> segments =
      ListSegments(directory);
  // 0: the chain is not yet anchored. A segment whose base seq is
  // <= after_seq + 1 (re)anchors it — everything below that base is
  // covered by the caller's snapshot.
  uint64_t expected_seq = 0;
  for (size_t s = 0; s < segments.size(); ++s) {
    const std::string& path = segments[s].second;
    const bool is_last = s + 1 == segments.size();
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::Internal("cannot open WAL segment " + path);
    }
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    ++result.segments_scanned;

    bool segment_bad = false;
    size_t valid_end = 0;
    if (data.size() < kSegmentHeaderBytes ||
        std::string_view(data).substr(0, 8) != kSegmentMagic ||
        Crc32c(std::string_view(data).substr(0, 16)) !=
            UnmaskCrc32c(GetU32(data, 16)) ||
        GetU64(data, 8) != segments[s].first) {
      segment_bad = true;  // Header torn or lying about its base seq.
    } else {
      valid_end = kSegmentHeaderBytes;
      uint64_t base = GetU64(data, 8);
      if (base <= after_seq + 1 &&
          (expected_seq == 0 || base >= expected_seq)) {
        // Every seq below `base` is covered by the caller's snapshot,
        // so the chain may (re)anchor here: an earlier recovery that
        // truncated corruption below the snapshot's coverage and then
        // reopened at snapshot_seq+1 leaves a hole between segments
        // that is fully covered, not data loss.
        expected_seq = base;
      }
      if (expected_seq == 0) {
        // The earliest usable segment already starts past what the
        // snapshot covers: the ops in (after_seq, base) were compacted
        // against a newer checkpoint that can no longer be loaded.
        // Replaying from here would silently skip acknowledged ops —
        // refuse instead of recovering an incomplete table.
        return Status::Internal(
            "WAL gap: segment " + path + " starts at seq " +
            std::to_string(base) + " but the recovery snapshot covers " +
            "only through seq " + std::to_string(after_seq) +
            "; the intervening records were compacted away");
      }
      if (base != expected_seq) {
        // A sequence gap between segments past the snapshot's
        // coverage: records here can never be applied on top of the
        // salvaged prefix.
        segment_bad = true;
        valid_end = 0;
      } else {
        size_t at = kSegmentHeaderBytes;
        WalRecord rec;
        size_t end = 0;
        while (at < data.size() && DecodeFrame(data, at, &rec, &end)) {
          if (rec.seq != expected_seq) break;  // Mid-log seq corruption.
          ++expected_seq;
          result.last_seq = rec.seq;
          if (rec.seq > after_seq) result.records.push_back(std::move(rec));
          at = end;
        }
        valid_end = at;
      }
    }

    if (segment_bad) {
      // Nothing salvageable here; this segment and everything after it
      // leaves the replayable prefix.
      for (size_t q = s; q < segments.size(); ++q) {
        XPRED_RETURN_NOT_OK(
            QuarantineFile(segments[q].second, &result.segments_quarantined));
      }
      break;
    }
    if (valid_end < data.size()) {
      // Invalid bytes after a valid prefix.
      if (is_last) {
        // Torn tail of the active segment: truncate and carry on.
        std::error_code ec;
        std::filesystem::resize_file(path, valid_end, ec);
        if (ec) {
          return Status::Internal("cannot truncate torn WAL tail in " +
                                  path + ": " + ec.message());
        }
        result.bytes_truncated += data.size() - valid_end;
        result.tail_truncated = true;
      } else {
        // Corruption mid-log with later segments present: their
        // records would leave a gap over the lost ones. Quarantine
        // everything from the corruption on.
        std::error_code ec;
        std::filesystem::resize_file(path, valid_end, ec);
        if (ec) {
          return Status::Internal("cannot truncate corrupt WAL data in " +
                                  path + ": " + ec.message());
        }
        result.bytes_truncated += data.size() - valid_end;
        result.tail_truncated = true;
        for (size_t q = s + 1; q < segments.size(); ++q) {
          XPRED_RETURN_NOT_OK(QuarantineFile(segments[q].second,
                                             &result.segments_quarantined));
        }
        break;
      }
    }
  }
  return result;
}

}  // namespace xpred::storage
