#ifndef XPRED_STORAGE_RECOVERY_REPORT_H_
#define XPRED_STORAGE_RECOVERY_REPORT_H_

#include <cstdint>
#include <string>

namespace xpred::storage {

/// \brief Structured outcome of DurableSubscriptionStore::Open's
/// recovery pass (DESIGN.md §16): what was loaded, what was replayed,
/// and what had to be salvaged. Surfaced three ways — returned to the
/// caller, exported as obs gauges, and emitted as JSON by
/// `xpred_cli restore --json` (validated by scripts/check_diag_schema.py).
struct RecoveryReport {
  /// \name Snapshot phase
  ///@{
  bool snapshot_loaded = false;
  std::string snapshot_path;       ///< Empty when none was found.
  uint64_t snapshot_epoch = 0;     ///< Epoch the checkpoint reflected.
  uint64_t snapshot_seq = 0;       ///< WAL seq the checkpoint covered.
  uint64_t snapshot_entries = 0;   ///< Sids seeded (live + dead).
  uint64_t snapshots_quarantined = 0;  ///< Corrupt candidates set aside.
  ///@}

  /// \name WAL replay phase
  ///@{
  uint64_t wal_segments_scanned = 0;
  uint64_t wal_records_replayed = 0;  ///< Records applied after the snapshot.
  uint64_t wal_subscribes = 0;
  uint64_t wal_unsubscribes = 0;
  uint64_t wal_epoch_marks = 0;
  uint64_t wal_bytes_truncated = 0;     ///< Torn-tail bytes cut.
  uint64_t wal_segments_quarantined = 0;
  ///@}

  /// \name Recovered state
  ///@{
  uint64_t last_durable_seq = 0;  ///< Highest seq restored; appends resume after.
  uint64_t issued_subscriptions = 0;  ///< Dense sid space size.
  uint64_t live_subscriptions = 0;
  uint64_t published_epoch = 0;  ///< Manager epoch after the recovery publish.
  ///@}

  /// Deterministic JSON object (sorted fixed key order, version-tagged
  /// `"xpred_recovery_report": 1`).
  std::string ToJson() const;
};

}  // namespace xpred::storage

#endif  // XPRED_STORAGE_RECOVERY_REPORT_H_
