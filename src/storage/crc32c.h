#ifndef XPRED_STORAGE_CRC32C_H_
#define XPRED_STORAGE_CRC32C_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xpred::storage {

/// \brief CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected form
/// 0x82F63B78) — the checksum framing every WAL record and snapshot
/// file (DESIGN.md §16).
///
/// Software table implementation, byte-at-a-time: the WAL writer
/// checksums tens of bytes per subscribe, so table lookup is far from
/// the bottleneck (fsync is), and it keeps the storage layer free of
/// platform intrinsics. The table is computed at compile time so the
/// header stays self-contained.
namespace detail {

constexpr std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32cTable = MakeCrc32cTable();

}  // namespace detail

/// Extends \p crc (a previous Crc32c result, or 0 for a fresh stream)
/// over \p data. Composable: Crc32c(a + b) == Crc32cExtend(Crc32c(a), b).
inline uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  crc = ~crc;
  for (unsigned char c : data) {
    crc = detail::kCrc32cTable[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data);
}

/// Masked CRC (the LevelDB/RocksDB trick): storing the CRC of data
/// that itself embeds CRCs is error-prone, so stored checksums are
/// rotated and offset. Verification unmasks first.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8u;
}
inline uint32_t UnmaskCrc32c(uint32_t masked) {
  uint32_t rot = masked - 0xA282EAD8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace xpred::storage

#endif  // XPRED_STORAGE_CRC32C_H_
