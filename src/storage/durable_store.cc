#include "storage/durable_store.h"

#include <algorithm>
#include <cstdio>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace xpred::storage {

namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string RecoveryReport::ToJson() const {
  std::string out;
  out += "{\n";
  out += "  \"xpred_recovery_report\": 1,\n";
  out += "  \"snapshot_loaded\": ";
  out += snapshot_loaded ? "true" : "false";
  out += ",\n";
  out += "  \"snapshot_path\": \"" + JsonEscape(snapshot_path) + "\",\n";
  out += "  \"snapshot_epoch\": " + std::to_string(snapshot_epoch) + ",\n";
  out += "  \"snapshot_seq\": " + std::to_string(snapshot_seq) + ",\n";
  out += "  \"snapshot_entries\": " + std::to_string(snapshot_entries) +
         ",\n";
  out += "  \"snapshots_quarantined\": " +
         std::to_string(snapshots_quarantined) + ",\n";
  out += "  \"wal_segments_scanned\": " +
         std::to_string(wal_segments_scanned) + ",\n";
  out += "  \"wal_records_replayed\": " +
         std::to_string(wal_records_replayed) + ",\n";
  out += "  \"wal_subscribes\": " + std::to_string(wal_subscribes) + ",\n";
  out += "  \"wal_unsubscribes\": " + std::to_string(wal_unsubscribes) +
         ",\n";
  out += "  \"wal_epoch_marks\": " + std::to_string(wal_epoch_marks) + ",\n";
  out += "  \"wal_bytes_truncated\": " +
         std::to_string(wal_bytes_truncated) + ",\n";
  out += "  \"wal_segments_quarantined\": " +
         std::to_string(wal_segments_quarantined) + ",\n";
  out += "  \"last_durable_seq\": " + std::to_string(last_durable_seq) +
         ",\n";
  out += "  \"issued_subscriptions\": " +
         std::to_string(issued_subscriptions) + ",\n";
  out += "  \"live_subscriptions\": " + std::to_string(live_subscriptions) +
         ",\n";
  out += "  \"published_epoch\": " + std::to_string(published_epoch) + "\n";
  out += "}\n";
  return out;
}

DurableSubscriptionStore::DurableSubscriptionStore(const Options& options)
    : options_(options) {
  options_.snapshots_to_keep = std::max<size_t>(options_.snapshots_to_keep, 1);
}

DurableSubscriptionStore::~DurableSubscriptionStore() {
  if (manager_ != nullptr) manager_->SetOpSink(nullptr);
}

Result<std::unique_ptr<DurableSubscriptionStore>>
DurableSubscriptionStore::Open(const Options& options,
                               RecoveryReport* report_out) {
  if (options.directory.empty()) {
    return Status::InvalidArgument(
        "DurableSubscriptionStore needs a directory");
  }
  std::unique_ptr<DurableSubscriptionStore> store(
      new DurableSubscriptionStore(options));
  std::lock_guard<std::mutex> lock(store->store_mu_);
  XPRED_RETURN_NOT_OK(store->RecoverLocked());
  if (report_out != nullptr) *report_out = store->report_;
  return store;
}

Status DurableSubscriptionStore::RecoverLocked() {
  core::IndexEpochManager::Options mopts;
  mopts.partitions = options_.partitions;
  mopts.matcher = options_.matcher;
  mopts.record_history = options_.record_history;
  manager_ = std::make_unique<core::IndexEpochManager>(mopts);

  // Phase 1: seed from the newest valid snapshot. Subscribing every
  // issued sid in order (then cancelling the dead ones) reproduces
  // the exact dense sid assignment and round-robin partition routing
  // the pre-crash process had.
  uint64_t max_quarantined_claim = 0;
  Result<std::optional<LoadedSnapshot>> snapshot =
      SnapshotLoader::LoadNewest(options_.directory,
                                 &report_.snapshots_quarantined,
                                 &max_quarantined_claim);
  XPRED_RETURN_NOT_OK(snapshot.status());
  if (snapshot->has_value()) {
    const SnapshotData& data = (**snapshot).data;
    report_.snapshot_loaded = true;
    report_.snapshot_path = (**snapshot).path;
    report_.snapshot_epoch = data.epoch;
    report_.snapshot_seq = data.last_seq;
    report_.snapshot_entries = data.entries.size();
    for (const SnapshotData::Entry& entry : data.entries) {
      Result<core::ExprId> sid = manager_->Subscribe(entry.xpath);
      if (!sid.ok()) {
        return Status::Internal(
            "snapshot replay rejected a checkpointed expression '" +
            entry.xpath + "': " + sid.status().message());
      }
      if (*sid != entry.sid) {
        return Status::Internal(
            "snapshot replay diverged: expression '" + entry.xpath +
            "' got sid " + std::to_string(*sid) + ", checkpoint says " +
            std::to_string(entry.sid));
      }
    }
    for (const SnapshotData::Entry& entry : data.entries) {
      if (!entry.live) {
        XPRED_RETURN_NOT_OK(
            manager_->Unsubscribe(static_cast<core::ExprId>(entry.sid)));
      }
    }
  }

  // Phase 2: replay WAL records past the snapshot's coverage,
  // salvaging the longest valid prefix (torn tails truncated, corrupt
  // segments quarantined — ScanWal documents the rules).
  Result<WalScanResult> scan =
      ScanWal(options_.directory, report_.snapshot_seq);
  XPRED_RETURN_NOT_OK(scan.status());
  report_.wal_segments_scanned = scan->segments_scanned;
  report_.wal_bytes_truncated = scan->bytes_truncated;
  report_.wal_segments_quarantined = scan->segments_quarantined;
  if (!scan->records.empty() &&
      scan->records.front().seq != report_.snapshot_seq + 1) {
    // ScanWal's anchoring rule should make this impossible; refuse
    // rather than replay over a hole if it ever regresses.
    return Status::Internal(
        "recovery hole: first WAL record after the snapshot has seq " +
        std::to_string(scan->records.front().seq) +
        ", expected " + std::to_string(report_.snapshot_seq + 1));
  }
  for (const WalRecord& record : scan->records) {
    switch (record.kind) {
      case WalRecord::Kind::kSubscribe: {
        Result<core::ExprId> sid = manager_->Subscribe(record.xpath);
        if (!sid.ok()) {
          return Status::Internal(
              "WAL replay rejected a logged subscribe (seq " +
              std::to_string(record.seq) + "): " + sid.status().message());
        }
        if (*sid != record.sid) {
          return Status::Internal(
              "WAL replay diverged at seq " + std::to_string(record.seq) +
              ": got sid " + std::to_string(*sid) + ", log says " +
              std::to_string(record.sid));
        }
        ++report_.wal_subscribes;
        break;
      }
      case WalRecord::Kind::kUnsubscribe: {
        Status st =
            manager_->Unsubscribe(static_cast<core::ExprId>(record.sid));
        if (!st.ok()) {
          return Status::Internal(
              "WAL replay rejected a logged unsubscribe (seq " +
              std::to_string(record.seq) + "): " + st.message());
        }
        ++report_.wal_unsubscribes;
        break;
      }
      case WalRecord::Kind::kEpochMark:
        ++report_.wal_epoch_marks;
        break;
    }
    ++report_.wal_records_replayed;
  }

  // Phase 3: publish the recovered state and go live. Epoch numbering
  // restarts with the process; the WAL's seq numbering is the durable
  // continuity.
  Result<uint64_t> published = manager_->Publish();
  XPRED_RETURN_NOT_OK(published.status());
  report_.published_epoch = *published;
  report_.last_durable_seq =
      std::max(report_.snapshot_seq, scan->last_seq);
  report_.issued_subscriptions = manager_->subscription_count();
  report_.live_subscriptions = manager_->live_subscriptions();

  if (max_quarantined_claim > report_.last_durable_seq) {
    // A quarantined checkpoint once claimed coverage past everything
    // we could rebuild: the ops between are gone (e.g. the WAL was
    // compacted against that checkpoint and then lost too). Refusing
    // beats going live on a silently incomplete table.
    return Status::Internal(
        "recovery would lose acknowledged state: quarantined snapshot "
        "claimed coverage through seq " +
        std::to_string(max_quarantined_claim) +
        " but only seq " + std::to_string(report_.last_durable_seq) +
        " could be rebuilt from the remaining snapshot + WAL");
  }

  next_seq_ = report_.last_durable_seq + 1;
  last_op_manager_seq_ = manager_->last_op_seq();
  checkpoint_seq_ = report_.snapshot_seq;

  SubscriptionWal::Options wopts;
  wopts.directory = options_.directory;
  wopts.fsync = options_.fsync;
  wopts.segment_bytes = options_.wal_segment_bytes;
  Result<std::unique_ptr<SubscriptionWal>> wal =
      SubscriptionWal::Open(wopts, next_seq_);
  XPRED_RETURN_NOT_OK(wal.status());
  wal_ = std::move(*wal);
  manager_->SetOpSink(this);

  BindMetricsLocked();
  XPRED_RECORD_EVENT(obs::EventType::kRecovery,
                     report_.wal_records_replayed,
                     report_.wal_bytes_truncated);
  return Status::OK();
}

void DurableSubscriptionStore::BindMetricsLocked() {
  if (options_.metrics == nullptr) return;
  obs::MetricsRegistry& reg = *options_.metrics;
  reg.AddGauge("xpred_storage_recovery_records_replayed",
               "WAL records replayed by the last recovery")
      ->Set(static_cast<double>(report_.wal_records_replayed));
  reg.AddGauge("xpred_storage_recovery_bytes_truncated",
               "Torn-tail bytes truncated by the last recovery")
      ->Set(static_cast<double>(report_.wal_bytes_truncated));
  reg.AddGauge("xpred_storage_recovery_segments_quarantined",
               "WAL segments quarantined by the last recovery")
      ->Set(static_cast<double>(report_.wal_segments_quarantined));
  reg.AddGauge("xpred_storage_recovery_snapshots_quarantined",
               "Corrupt snapshots set aside by the last recovery")
      ->Set(static_cast<double>(report_.snapshots_quarantined));
  reg.AddGauge("xpred_storage_snapshot_epoch",
               "Epoch of the newest durable checkpoint")
      ->Set(static_cast<double>(report_.snapshot_epoch));
  reg.AddGauge("xpred_storage_durable_seq",
               "Highest durable WAL sequence number")
      ->Set(static_cast<double>(report_.last_durable_seq));
}

Result<core::ExprId> DurableSubscriptionStore::Subscribe(
    std::string_view xpath) {
  std::lock_guard<std::mutex> lock(store_mu_);
  return manager_->Subscribe(xpath);
}

Status DurableSubscriptionStore::Unsubscribe(core::ExprId sid) {
  std::lock_guard<std::mutex> lock(store_mu_);
  return manager_->Unsubscribe(sid);
}

Result<uint64_t> DurableSubscriptionStore::Publish() {
  std::lock_guard<std::mutex> lock(store_mu_);
  return manager_->Publish();
}

uint64_t DurableSubscriptionStore::next_durable_seq() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return next_seq_;
}

uint64_t DurableSubscriptionStore::last_written_seq() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return wal_ != nullptr ? wal_->last_written_seq() : 0;
}

bool DurableSubscriptionStore::dead() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return wal_ == nullptr || wal_->dead();
}

Status DurableSubscriptionStore::OnSubscribe(uint64_t seq,
                                             core::ExprId sid,
                                             std::string_view xpath) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  WalRecord record;
  record.kind = WalRecord::Kind::kSubscribe;
  record.seq = next_seq_;
  record.sid = sid;
  record.xpath.assign(xpath);
  XPRED_RETURN_NOT_OK(wal_->Append(record));
  ++next_seq_;
  last_op_manager_seq_ = seq;
  return Status::OK();
}

Status DurableSubscriptionStore::OnUnsubscribe(uint64_t seq,
                                               core::ExprId sid) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  WalRecord record;
  record.kind = WalRecord::Kind::kUnsubscribe;
  record.seq = next_seq_;
  record.sid = sid;
  XPRED_RETURN_NOT_OK(wal_->Append(record));
  ++next_seq_;
  last_op_manager_seq_ = seq;
  return Status::OK();
}

Status DurableSubscriptionStore::OnPublish(uint64_t epoch,
                                           uint64_t /*applied_seq*/) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  WalRecord record;
  record.kind = WalRecord::Kind::kEpochMark;
  record.seq = next_seq_;
  record.epoch = epoch;
  XPRED_RETURN_NOT_OK(wal_->Append(record));
  ++next_seq_;
  return Status::OK();
}

Status DurableSubscriptionStore::Checkpoint() {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (dead()) {
    return Status::Rejected(
        "store is poisoned by an earlier WAL failure; reopen to recover");
  }
  if (manager_->pending_ops() > 0) {
    XPRED_RETURN_NOT_OK(manager_->Publish().status());
  }
  Result<core::IndexEpochManager::SubscriptionExport> exported =
      manager_->ExportSubscriptions();
  XPRED_RETURN_NOT_OK(exported.status());

  SnapshotData data;
  data.epoch = exported->epoch;
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    if (last_op_manager_seq_ != exported->last_seq) {
      // A mutation issued directly on manager() slipped between the
      // export and this capture: the snapshot would claim coverage of
      // an op it does not contain. Give up cleanly; the caller
      // retries.
      return Status::Rejected(
          "a mutation bypassed the store during Checkpoint; retry");
    }
    data.last_seq = next_seq_ - 1;
    // Everything the snapshot will claim to cover must be on disk
    // first: the checkpoint deletes the WAL segments that would
    // otherwise re-create it.
    XPRED_RETURN_NOT_OK(wal_->Sync());
  }
  data.entries.reserve(exported->entries.size());
  for (const core::IndexEpochManager::SubscriptionExport::Entry& entry :
       exported->entries) {
    SnapshotData::Entry out;
    out.sid = entry.sid;
    out.live = entry.live;
    out.xpath = entry.xpath;
    data.entries.push_back(std::move(out));
  }
  Result<std::string> path = SnapshotWriter::Write(options_.directory, data);
  XPRED_RETURN_NOT_OK(path.status());
  checkpoint_seq_ = data.last_seq;

  // The snapshot is durable: prune old checkpoints first, then compact
  // the WAL only through the oldest snapshot still on disk. Every
  // retained snapshot therefore stays replayable — if the newest turns
  // out corrupt at the next recovery, falling back to an older one
  // finds all of its successor ops still in the WAL instead of a
  // compacted-away gap.
  XPRED_RETURN_NOT_OK(
      SnapshotLoader::PruneOld(options_.directory,
                               options_.snapshots_to_keep)
          .status());
  Result<std::optional<uint64_t>> oldest_retained =
      SnapshotLoader::OldestRetainedSeq(options_.directory);
  XPRED_RETURN_NOT_OK(oldest_retained.status());
  const uint64_t compact_through =
      oldest_retained->value_or(data.last_seq);
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    Result<size_t> compacted =
        wal_->RotateAndCompact(next_seq_, compact_through);
    XPRED_RETURN_NOT_OK(compacted.status());
  }

  if (options_.record_history) {
    Result<size_t> trimmed = manager_->TrimHistoryBefore(data.epoch);
    // kRejected means a reader still pins an older epoch — the trim is
    // best-effort and the next checkpoint retries; anything else is a
    // real failure.
    if (!trimmed.ok() &&
        trimmed.status().code() != StatusCode::kRejected) {
      return trimmed.status();
    }
  }

  if (options_.metrics != nullptr) {
    options_.metrics
        ->AddGauge("xpred_storage_snapshot_epoch",
                   "Epoch of the newest durable checkpoint")
        ->Set(static_cast<double>(data.epoch));
    options_.metrics
        ->AddGauge("xpred_storage_durable_seq",
                   "Highest durable WAL sequence number")
        ->Set(static_cast<double>(checkpoint_seq_));
  }
  return Status::OK();
}

}  // namespace xpred::storage
