#ifndef XPRED_STORAGE_DURABLE_STORE_H_
#define XPRED_STORAGE_DURABLE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/epoch_manager.h"
#include "storage/recovery_report.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace xpred::obs {
class MetricsRegistry;
}  // namespace xpred::obs

namespace xpred::storage {

/// \brief Crash-recoverable subscription state: a live
/// `core::IndexEpochManager` whose single-writer op log is mirrored
/// into a `SubscriptionWal`, checkpointed by atomic snapshots, and
/// rebuilt on open (DESIGN.md §16).
///
/// Lifecycle:
///  - `Open()` recovers: newest valid snapshot seeds the manager
///    (identical sid assignment and partition routing), WAL records
///    after the snapshot's seq are replayed, torn tails are salvaged,
///    and a `RecoveryReport` describes what happened. The store then
///    goes live with the WAL mirroring every new mutation.
///  - `Subscribe`/`Unsubscribe`/`Publish` forward to the manager; the
///    WAL append happens inside the manager's writer lock (OpSink), so
///    an OK status means the op is as durable as the fsync policy
///    promises. A WAL failure poisons the store — drain, reopen,
///    recover.
///  - `Checkpoint()` snapshots the full table at the current epoch
///    boundary, prunes old snapshots, compacts the WAL through the
///    oldest *retained* snapshot's seq (so every kept snapshot stays
///    replayable if a newer one turns out corrupt at recovery), and
///    (under record_history) trims the manager's in-memory op log —
///    the bounded-memory contract.
///
/// Concurrency: reads (manager().Pin(), exec::ParallelFilter batches)
/// are lock-free as ever. Mutations and Checkpoint are serialized by a
/// store-level writer mutex on top of the manager's own; the WAL state
/// itself (next durable seq, the active segment) has a dedicated
/// mutex, so a mutation issued directly on manager() — legal but
/// discouraged, see manager() — is mirrored race-free too.
class DurableSubscriptionStore final
    : private core::IndexEpochManager::OpSink {
 public:
  struct Options {
    /// Directory holding `wal-*.xwal` segments and
    /// `snapshot-*.xsnap` checkpoints.
    std::string directory;
    FsyncPolicy fsync = FsyncPolicy::kEveryPublish;
    size_t wal_segment_bytes = 4u << 20;
    /// Valid snapshots retained after a checkpoint (>= 1; older ones
    /// are pruned).
    size_t snapshots_to_keep = 2;
    size_t partitions = 1;
    core::Matcher::Options matcher;
    /// Forwarded to the manager (the churn/recovery oracles need it).
    bool record_history = false;
    /// Optional: recovery/WAL gauges are registered here
    /// (xpred_storage_*).
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Recovers whatever state \p options.directory holds (an empty or
  /// absent directory is a valid empty store) and goes live. The
  /// report lands in \p report_out (optional) and in
  /// recovery_report().
  static Result<std::unique_ptr<DurableSubscriptionStore>> Open(
      const Options& options, RecoveryReport* report_out = nullptr);
  ~DurableSubscriptionStore() override;

  DurableSubscriptionStore(const DurableSubscriptionStore&) = delete;
  DurableSubscriptionStore& operator=(const DurableSubscriptionStore&) =
      delete;

  /// The live manager: Pin() for lock-free reads, or hand it to a
  /// live-mode exec::ParallelFilter.
  ///
  /// Mutations (Subscribe/Unsubscribe/Publish) SHOULD go through the
  /// store's own write path below. Calling them directly on the
  /// returned manager is still durable and race-free — the OpSink
  /// mirror serializes WAL state under its own mutex — but it bypasses
  /// store_mu_, so a Checkpoint() racing such a mutation gives up with
  /// kRejected (retry it) instead of risking a snapshot that disagrees
  /// with the log.
  core::IndexEpochManager& manager() { return *manager_; }
  const core::IndexEpochManager& manager() const { return *manager_; }

  /// \name Durable write path
  ///@{
  Result<core::ExprId> Subscribe(std::string_view xpath);
  Status Unsubscribe(core::ExprId sid);
  Result<uint64_t> Publish();

  /// Checkpoints at the current epoch boundary (publishing queued ops
  /// first if needed): atomic snapshot, snapshot pruning, WAL
  /// compaction through the oldest retained snapshot's seq, op-log
  /// trim. On failure (e.g. an injected rename fault) the store keeps
  /// running on the previous checkpoint + full WAL — a checkpoint
  /// failure loses no data. Returns kRejected (safe to retry) when a
  /// mutation issued directly on manager() raced the export.
  Status Checkpoint();
  ///@}

  const RecoveryReport& recovery_report() const { return report_; }
  /// Next durable sequence number the WAL will assign.
  uint64_t next_durable_seq() const;
  /// Highest WAL seq whose frame was fully written (survives a process
  /// kill even if a later fsync failed) — the crash-point harness's
  /// durable frontier.
  uint64_t last_written_seq() const;
  /// True once a WAL failure poisoned the write path.
  bool dead() const;

 private:
  explicit DurableSubscriptionStore(const Options& options);

  /// core::IndexEpochManager::OpSink — called under the manager's
  /// writer lock.
  Status OnSubscribe(uint64_t seq, core::ExprId sid,
                     std::string_view xpath) override;
  Status OnUnsubscribe(uint64_t seq, core::ExprId sid) override;
  Status OnPublish(uint64_t epoch, uint64_t applied_seq) override;

  Status RecoverLocked();
  void BindMetricsLocked();

  Options options_;
  std::unique_ptr<core::IndexEpochManager> manager_;
  std::unique_ptr<SubscriptionWal> wal_;
  RecoveryReport report_;

  /// Serializes the store's own write path against checkpoints. Lock
  /// order: store_mu_ -> (manager writer mutex) -> wal_mu_.
  mutable std::mutex store_mu_;
  /// Guards the WAL itself: next_seq_, last_op_manager_seq_, and every
  /// wal_ operation. Taken by the OpSink callbacks (which run under
  /// the manager's writer mutex, with or without store_mu_ — direct
  /// manager() mutations skip the latter) and by Checkpoint().
  mutable std::mutex wal_mu_;
  /// Next durable seq; advanced by the OpSink callbacks.
  uint64_t next_seq_ = 1;
  /// Manager op seq of the last mirrored subscribe/unsubscribe.
  /// Checkpoint compares it against ExportSubscriptions().last_seq to
  /// detect a direct-manager mutation racing the export.
  uint64_t last_op_manager_seq_ = 0;
  /// Durable seq of the newest snapshot. The WAL compaction bound is
  /// the *oldest retained* snapshot's seq, not this.
  uint64_t checkpoint_seq_ = 0;
};

}  // namespace xpred::storage

#endif  // XPRED_STORAGE_DURABLE_STORE_H_
