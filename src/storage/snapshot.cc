#include "storage/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/fault_injection.h"
#include "obs/flight_recorder.h"
#include "storage/crc32c.h"

namespace xpred::storage {

namespace {

constexpr std::string_view kSnapshotMagic = "XPSNAP01";
constexpr size_t kFixedHeaderBytes = 8 + 8 + 8 + 8;  // magic, 3 x u64.
constexpr size_t kMaxXPathBytes = 1u << 20;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(std::string_view in, size_t at) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[at])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[at + 1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[at + 2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[at + 3])) << 24;
}

uint64_t GetU64(std::string_view in, size_t at) {
  return static_cast<uint64_t>(GetU32(in, at)) |
         static_cast<uint64_t>(GetU32(in, at + 4)) << 32;
}

std::string SnapshotName(uint64_t last_seq) {
  char name[40];
  std::snprintf(name, sizeof(name), "snapshot-%016llx.xsnap",
                static_cast<unsigned long long>(last_seq));
  return name;
}

/// True for "snapshot-<16 hex>.xsnap"; \p seq_out (optional) receives
/// the covered seq encoded in the name.
bool ParseSnapshotName(const std::string& name, uint64_t* seq_out) {
  if (name.size() != 9 + 16 + 6) return false;
  if (name.rfind("snapshot-", 0) != 0) return false;
  if (name.compare(25, 6, ".xsnap") != 0) return false;
  uint64_t seq = 0;
  for (size_t i = 9; i < 25; ++i) {
    char c = name[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    seq = (seq << 4) | digit;
  }
  if (seq_out != nullptr) *seq_out = seq;
  return true;
}

bool IsSnapshotName(const std::string& name) {
  return ParseSnapshotName(name, nullptr);
}

/// Sorted ascending by name == ascending by covered seq.
std::vector<std::string> ListSnapshots(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return paths;
  for (const auto& entry : it) {
    if (IsSnapshotName(entry.path().filename().string())) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

Status FsyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("open(dir) for fsync failed: " + dir + ": " +
                            std::strerror(errno));
  }
  int rc = ::fsync(fd);
  int saved = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync(dir) failed: " + dir + ": " +
                            std::strerror(saved));
  }
  return Status::OK();
}

std::string Serialize(const SnapshotData& data) {
  std::string out;
  out.append(kSnapshotMagic);
  PutU64(&out, data.epoch);
  PutU64(&out, data.last_seq);
  PutU64(&out, data.entries.size());
  for (const SnapshotData::Entry& entry : data.entries) {
    PutU64(&out, entry.sid);
    out.push_back(entry.live ? 1 : 0);
    PutU32(&out, static_cast<uint32_t>(entry.xpath.size()));
    out.append(entry.xpath);
  }
  PutU32(&out, MaskCrc32c(Crc32c(out)));
  return out;
}

Result<SnapshotData> Deserialize(std::string_view data,
                                 const std::string& path) {
  if (data.size() < kFixedHeaderBytes + 4 ||
      data.substr(0, 8) != kSnapshotMagic) {
    return Status::InvalidArgument("not a snapshot file: " + path);
  }
  uint32_t stored = UnmaskCrc32c(GetU32(data, data.size() - 4));
  if (Crc32c(data.substr(0, data.size() - 4)) != stored) {
    return Status::InvalidArgument("snapshot checksum mismatch: " + path);
  }
  SnapshotData snap;
  snap.epoch = GetU64(data, 8);
  snap.last_seq = GetU64(data, 16);
  uint64_t count = GetU64(data, 24);
  size_t at = kFixedHeaderBytes;
  const size_t end = data.size() - 4;
  // Each entry occupies at least 13 bytes (sid, live flag, xpath
  // length); a count the remaining bytes cannot possibly hold must be
  // rejected before reserve() turns it into bad_alloc/length_error.
  if (count > (end - at) / 13) {
    return Status::InvalidArgument("snapshot entry count implausible: " +
                                   path);
  }
  snap.entries.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    if (end - at < 8 + 1 + 4) {
      return Status::InvalidArgument("snapshot entry table truncated: " +
                                     path);
    }
    SnapshotData::Entry entry;
    entry.sid = GetU64(data, at);
    entry.live = data[at + 8] != 0;
    uint32_t xlen = GetU32(data, at + 9);
    at += 13;
    if (xlen > kMaxXPathBytes || end - at < xlen) {
      return Status::InvalidArgument("snapshot entry table truncated: " +
                                     path);
    }
    entry.xpath.assign(data.substr(at, xlen));
    at += xlen;
    if (entry.sid != i) {
      return Status::InvalidArgument("snapshot sids are not dense: " + path);
    }
    snap.entries.push_back(std::move(entry));
  }
  if (at != end) {
    return Status::InvalidArgument("snapshot has trailing bytes: " + path);
  }
  return snap;
}

}  // namespace

Result<std::string> SnapshotWriter::Write(const std::string& directory,
                                          const SnapshotData& data) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot directory " + directory +
                            ": " + ec.message());
  }
  const std::string final_path =
      directory + "/" + SnapshotName(data.last_seq);
  const std::string tmp_path = final_path + ".tmp";
  std::string bytes = Serialize(data);

  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create " + tmp_path + ": " +
                            std::strerror(errno));
  }
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return Status::Internal("snapshot write failed: " + tmp_path + ": " +
                              std::strerror(saved));
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::Internal("snapshot fsync failed: " + tmp_path + ": " +
                            std::strerror(saved));
  }
  ::close(fd);

  // A crash here — modeled by the injection site — leaves only the
  // .tmp file: the loader ignores it, so the previous snapshot (or
  // none) stays authoritative and the WAL still covers everything.
  XPRED_FAULT_POINT(faultsite::kStorageSnapshotRename);
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::Internal("snapshot rename failed: " + tmp_path + " -> " +
                            final_path + ": " + ec.message());
  }
  XPRED_RETURN_NOT_OK(FsyncDirectory(directory));
  XPRED_RECORD_EVENT(obs::EventType::kSnapshotWrite, data.epoch,
                     bytes.size());
  return final_path;
}

Result<SnapshotData> SnapshotLoader::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open snapshot " + path);
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return Deserialize(data, path);
}

Result<std::optional<LoadedSnapshot>> SnapshotLoader::LoadNewest(
    const std::string& directory, uint64_t* quarantined_out,
    uint64_t* max_quarantined_seq_out) {
  std::vector<std::string> paths = ListSnapshots(directory);
  for (size_t i = paths.size(); i-- > 0;) {
    Result<SnapshotData> snap = LoadFile(paths[i]);
    if (snap.ok()) {
      LoadedSnapshot loaded;
      loaded.data = std::move(*snap);
      loaded.path = paths[i];
      return std::optional<LoadedSnapshot>(std::move(loaded));
    }
    // Corrupt candidate: set it aside (never retried) and fall back to
    // the next-newest. Checkpoints compact the WAL only through the
    // oldest *retained* snapshot's seq (DurableSubscriptionStore's
    // invariant), so falling back to a retained snapshot only
    // lengthens replay; if the WAL turns out not to reach back this
    // far after all, ScanWal detects the gap and recovery refuses
    // rather than replaying over it.
    std::error_code ec;
    std::filesystem::rename(paths[i], paths[i] + ".quarantined", ec);
    if (ec) {
      return Status::Internal("cannot quarantine corrupt snapshot " +
                              paths[i] + ": " + ec.message());
    }
    if (quarantined_out != nullptr) ++*quarantined_out;
    uint64_t claimed = 0;
    if (max_quarantined_seq_out != nullptr &&
        ParseSnapshotName(
            std::filesystem::path(paths[i]).filename().string(), &claimed) &&
        claimed > *max_quarantined_seq_out) {
      *max_quarantined_seq_out = claimed;
    }
  }
  return std::optional<LoadedSnapshot>();
}

Result<std::optional<uint64_t>> SnapshotLoader::OldestRetainedSeq(
    const std::string& directory) {
  std::vector<std::string> paths = ListSnapshots(directory);
  if (paths.empty()) return std::optional<uint64_t>();
  // Fixed-width hex names sort lexically == numerically; the first
  // path is the oldest snapshot still on disk.
  uint64_t seq = 0;
  if (!ParseSnapshotName(std::filesystem::path(paths.front())
                             .filename()
                             .string(),
                         &seq)) {
    return Status::Internal("unparseable snapshot name: " + paths.front());
  }
  return std::optional<uint64_t>(seq);
}

Result<size_t> SnapshotLoader::PruneOld(const std::string& directory,
                                        size_t keep) {
  std::vector<std::string> paths = ListSnapshots(directory);
  size_t removed = 0;
  while (paths.size() > keep) {
    std::error_code ec;
    std::filesystem::remove(paths.front(), ec);
    if (ec) {
      return Status::Internal("cannot prune snapshot " + paths.front() +
                              ": " + ec.message());
    }
    paths.erase(paths.begin());
    ++removed;
  }
  return removed;
}

}  // namespace xpred::storage
