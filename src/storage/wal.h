#ifndef XPRED_STORAGE_WAL_H_
#define XPRED_STORAGE_WAL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xpred::storage {

/// When appended records reach the disk (DESIGN.md §16). Process
/// crashes never lose written-but-unsynced records (the page cache
/// survives the process); fsync is the power-loss/backing-store knob
/// and the dominant cost of `kAlways` (see bench_durability).
enum class FsyncPolicy : uint8_t {
  kNever,         ///< write() per record, no fsync.
  kEveryPublish,  ///< fsync once per epoch-mark record.
  kAlways,        ///< fsync after every record.
};

/// One durable subscription-log record, mirroring a validated
/// `core::IndexEpochManager` op (or an epoch boundary).
struct WalRecord {
  enum class Kind : uint8_t {
    kSubscribe = 1,    ///< sid + xpath.
    kUnsubscribe = 2,  ///< sid.
    kEpochMark = 3,    ///< epoch (a Publish() boundary).
  };
  Kind kind = Kind::kSubscribe;
  uint64_t seq = 0;    ///< Durable sequence number, 1-based, contiguous.
  uint64_t sid = 0;    ///< Global subscription id (subscribe/unsubscribe).
  uint64_t epoch = 0;  ///< Published epoch (epoch marks only).
  std::string xpath;   ///< Subscribed expression (subscribe only).
};

/// \brief Append-only write-ahead log of subscription mutations:
/// CRC32C-framed records in rotating segment files
/// (`wal-<firstseq:016x>.xwal`).
///
/// Frame layout (little-endian, DESIGN.md §16):
///
///   u32 masked_crc32c   over the length field and the payload
///   u32 payload_len
///   payload := u8 kind, u64 seq, then per kind:
///     subscribe:   u64 sid, u32 xpath_len, xpath bytes
///     unsubscribe: u64 sid
///     epoch_mark:  u64 epoch
///
/// Each segment begins with a 20-byte header: magic "XPWAL001",
/// u64 base_seq (the seq of its first record), u32 masked header CRC.
///
/// A SubscriptionWal is the write side only; recovery reads segments
/// through ScanWal() below. Not thread-safe: the epoch manager's
/// single-writer mutex already serializes every append (the WAL is
/// driven from its OpSink hook).
///
/// Failure model: any write or fsync error — real or injected at
/// `storage.wal.write` / `storage.wal.fsync` — permanently fails the
/// log (`dead()` becomes true, every later append returns kRejected).
/// A WAL that cannot persist is indistinguishable from a crashed
/// process; the recommended response is to drain and restart, which
/// crash recovery makes safe. An injected write fault additionally
/// leaves a torn half-frame on disk, so the crash-point harness
/// exercises the salvage path for real.
class SubscriptionWal {
 public:
  struct Options {
    std::string directory;
    FsyncPolicy fsync = FsyncPolicy::kEveryPublish;
    /// Rotate to a fresh segment once the current one exceeds this.
    size_t segment_bytes = 4u << 20;
  };

  /// Opens the log for appending, starting a fresh segment whose first
  /// record will carry \p next_seq. Creates the directory if needed.
  /// Existing segments are left untouched (recovery owns them).
  static Result<std::unique_ptr<SubscriptionWal>> Open(const Options& options,
                                                       uint64_t next_seq);
  ~SubscriptionWal();

  SubscriptionWal(const SubscriptionWal&) = delete;
  SubscriptionWal& operator=(const SubscriptionWal&) = delete;

  /// Appends one record; \p record.seq must be the next contiguous
  /// sequence number. Applies the fsync policy before returning, so an
  /// OK status means the record is as durable as the policy promises.
  Status Append(const WalRecord& record);

  /// Forces the current segment to disk regardless of policy.
  Status Sync();

  /// Closes the current segment and starts a new one whose first
  /// record will carry \p next_seq, then deletes every older segment
  /// whose records all have seq <= \p through_seq (they are covered by
  /// a snapshot checkpoint). Returns the number of segments removed.
  Result<size_t> RotateAndCompact(uint64_t next_seq, uint64_t through_seq);

  /// True once a write/fsync failure poisoned the log.
  bool dead() const { return !alive_; }
  /// Highest seq whose frame reached the disk in full (0: none). Under
  /// process-kill semantics this is the recoverable frontier even when
  /// a later fsync failed — the crash-point harness's ground truth.
  uint64_t last_written_seq() const { return next_seq_ - 1; }
  uint64_t segments_created() const { return segments_created_; }
  /// Segment files currently on disk (including the active one).
  Result<size_t> SegmentCount() const;
  const std::string& directory() const { return options_.directory; }

 private:
  explicit SubscriptionWal(const Options& options);
  Status OpenSegment(uint64_t base_seq);
  Status WriteFully(std::string_view bytes);
  Status FsyncNow();
  Status CloseSegment();

  Options options_;
  int fd_ = -1;
  std::string segment_path_;
  size_t segment_written_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t segments_created_ = 0;
  bool alive_ = true;
};

/// \brief Result of scanning the on-disk WAL during recovery.
struct WalScanResult {
  /// Valid records with seq > the scan's `after_seq`, in seq order.
  std::vector<WalRecord> records;
  uint64_t last_seq = 0;            ///< Highest valid seq seen (0: none).
  uint64_t segments_scanned = 0;    ///< Segment files visited.
  uint64_t bytes_truncated = 0;     ///< Torn tail bytes cut from the log.
  uint64_t segments_quarantined = 0;  ///< Renamed to `.quarantined`.
  bool tail_truncated = false;      ///< A torn tail was salvaged.
};

/// Scans every `wal-*.xwal` segment under \p directory in sequence
/// order, validating frame CRCs and seq contiguity, and returns the
/// records after \p after_seq (a snapshot's last covered seq).
///
/// Salvage rules (DESIGN.md §16): the replayable log is the longest
/// valid prefix. The first invalid byte ends it — in the final
/// segment the tail is physically truncated (torn-write salvage);
/// an invalid non-final segment is renamed `<name>.quarantined`
/// along with every later segment (their records would leave a
/// sequence gap and can never be applied safely).
///
/// Seq-contiguity is anchored to \p after_seq, not to the first
/// segment on disk: a segment whose base seq is <= after_seq + 1
/// (re)starts the chain, so a hole that lies entirely below the
/// snapshot's coverage (e.g. left by an earlier recovery's mid-log
/// truncation) is legitimate. If instead the earliest usable segment
/// starts past after_seq + 1 — acknowledged ops were compacted
/// against a checkpoint that can no longer be loaded — the scan
/// refuses with a "WAL gap" error rather than replaying over the
/// hole.
Result<WalScanResult> ScanWal(const std::string& directory,
                              uint64_t after_seq);

/// Serializes one record into its CRC32C frame (exposed for tests).
std::string EncodeWalRecord(const WalRecord& record);

std::string_view FsyncPolicyName(FsyncPolicy policy);
/// Parses "never" / "publish" / "always"; kInvalidArgument otherwise.
Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name);

}  // namespace xpred::storage

#endif  // XPRED_STORAGE_WAL_H_
