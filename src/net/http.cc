#include "net/http.h"

#include <algorithm>
#include <cctype>

namespace xpred::net {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Token characters legal in a method name (RFC 9110 §5.6.2 tchar).
bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  return std::string_view("!#$%&'*+-.^_`|~").find(c) !=
         std::string_view::npos;
}

}  // namespace

std::string_view HttpRequest::path() const {
  std::string_view t = target;
  size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string_view HttpRequest::query() const {
  std::string_view t = target;
  size_t q = t.find('?');
  return q == std::string_view::npos ? std::string_view() : t.substr(q + 1);
}

std::string HttpRequest::QueryParam(std::string_view key) const {
  std::string_view q = query();
  while (!q.empty()) {
    size_t amp = q.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? q : q.substr(0, amp);
    q = amp == std::string_view::npos ? std::string_view()
                                      : q.substr(amp + 1);
    size_t eq = pair.find('=');
    std::string_view name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (name == key) {
      return eq == std::string_view::npos
                 ? std::string()
                 : std::string(pair.substr(eq + 1));
    }
  }
  return std::string();
}

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return std::string_view();
}

bool HttpRequest::keep_alive() const {
  std::string_view connection = Header("connection");
  if (version == "HTTP/1.1") {
    return !EqualsIgnoreCase(connection, "close");
  }
  return EqualsIgnoreCase(connection, "keep-alive");
}

HttpResponse HttpResponse::Text(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::Json(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

std::string_view HttpResponse::ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string HttpResponse::Serialize(bool close) const {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += ReasonPhrase(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  for (const auto& [name, value] : headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  if (close) out += "\r\nConnection: close";
  out += "\r\n\r\n";
  if (!suppress_body) out += body;
  return out;
}

void RequestParser::Append(std::string_view data) {
  // Compact lazily: only when the dead prefix dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data);
}

RequestParser::Result RequestParser::Fail(int status,
                                          std::string_view reason) {
  error_status_ = status;
  error_reason_ = reason;
  return Result::kError;
}

RequestParser::Result RequestParser::TryNext(HttpRequest* out) {
  if (error_status_ != 0) return Result::kError;
  std::string_view input(buffer_);
  input.remove_prefix(consumed_);

  // Tolerate leading CRLF between pipelined requests (RFC 9112 §2.2).
  size_t skip = 0;
  while (skip < input.size() &&
         (input[skip] == '\r' || input[skip] == '\n')) {
    ++skip;
  }
  input.remove_prefix(skip);

  // Find the end of the header section. Accept bare-LF line endings
  // (robustness rule, RFC 9112 §2.2) by scanning for "\n\r\n" or
  // "\n\n".
  size_t header_end = std::string_view::npos;  // Index AFTER the blank line.
  for (size_t i = 0; i < input.size(); ++i) {
    if (input[i] != '\n') continue;
    if (i + 1 < input.size() && input[i + 1] == '\n') {
      header_end = i + 2;
      break;
    }
    if (i + 2 < input.size() && input[i + 1] == '\r' &&
        input[i + 2] == '\n') {
      header_end = i + 3;
      break;
    }
  }
  if (header_end == std::string_view::npos) {
    if (input.size() > options_.max_header_bytes) {
      return Fail(431, "header section exceeds limit");
    }
    return Result::kNeedMore;
  }
  if (header_end > options_.max_header_bytes) {
    return Fail(431, "header section exceeds limit");
  }

  // ---- Request line.
  std::string_view headers_block = input.substr(0, header_end);
  size_t line_end = headers_block.find('\n');
  std::string_view request_line = headers_block.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }
  size_t sp1 = request_line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos
                   ? std::string_view::npos
                   : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Fail(400, "malformed request line");
  }
  std::string_view method = request_line.substr(0, sp1);
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = request_line.substr(sp2 + 1);
  if (method.empty() ||
      !std::all_of(method.begin(), method.end(), IsTokenChar)) {
    return Fail(400, "malformed method");
  }
  if (target.empty() || target[0] != '/') {
    return Fail(400, "target must be origin-form");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Fail(505, "unsupported HTTP version");
  }

  HttpRequest request;
  request.method.assign(method);
  request.target.assign(target);
  request.version.assign(version);

  // ---- Header fields.
  size_t content_length = 0;
  bool have_content_length = false;
  std::string_view rest = headers_block.substr(line_end + 1);
  while (!rest.empty()) {
    size_t nl = rest.find('\n');
    std::string_view line = rest.substr(0, nl);
    rest.remove_prefix(nl + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) break;  // Blank line: end of headers.
    if (line[0] == ' ' || line[0] == '\t') {
      return Fail(400, "obsolete header folding");
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Fail(400, "malformed header field");
    }
    std::string_view name = line.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), IsTokenChar)) {
      return Fail(400, "malformed header name");
    }
    std::string_view value = TrimOws(line.substr(colon + 1));
    std::string lower = ToLower(name);
    if (lower == "transfer-encoding") {
      return Fail(501, "transfer-encoding not supported");
    }
    if (lower == "content-length") {
      if (value.empty() || !std::all_of(value.begin(), value.end(), [](
                               char c) { return c >= '0' && c <= '9'; })) {
        return Fail(400, "malformed content-length");
      }
      uint64_t parsed = 0;
      for (char c : value) {
        parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
        if (parsed > options_.max_body_bytes) {
          return Fail(413, "body exceeds limit");
        }
      }
      if (have_content_length && parsed != content_length) {
        return Fail(400, "conflicting content-length");
      }
      content_length = static_cast<size_t>(parsed);
      have_content_length = true;
    }
    request.headers.emplace_back(std::move(lower), std::string(value));
  }

  // ---- Body (Content-Length framing only).
  if (input.size() - header_end < content_length) {
    return Result::kNeedMore;
  }
  request.body.assign(input.substr(header_end, content_length));

  consumed_ += skip + header_end + content_length;
  *out = std::move(request);
  return Result::kReady;
}

}  // namespace xpred::net
