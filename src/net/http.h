#ifndef XPRED_NET_HTTP_H_
#define XPRED_NET_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xpred::net {

/// \brief One parsed HTTP/1.x request (DESIGN.md §17).
///
/// The parser keeps the request line verbatim in `target`; `path()`
/// and `QueryParam()` split it lazily so routing never allocates for
/// the common no-query case.
struct HttpRequest {
  std::string method;   // "GET", uppercased by the wire already.
  std::string target;   // "/debug/trace?doc=3" — path + raw query.
  std::string version;  // "HTTP/1.0" or "HTTP/1.1".
  /// Header fields in wire order; names are lowercased at parse time
  /// (field names are case-insensitive, RFC 9110 §5.1).
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Target up to the first '?'.
  std::string_view path() const;
  /// Raw query string after the first '?' ("" when absent).
  std::string_view query() const;
  /// Value of \p key in the query string, percent-decoding left to the
  /// caller (the introspection plane only uses small integers).
  /// Returns "" when absent.
  std::string QueryParam(std::string_view key) const;
  /// First header value for the lowercase name \p name, "" if absent.
  std::string_view Header(std::string_view name) const;
  /// HTTP/1.1 defaults to keep-alive; "connection: close" (any case)
  /// or HTTP/1.0 without "connection: keep-alive" disables it.
  bool keep_alive() const;
};

/// \brief One HTTP response under construction. `Serialize` renders
/// the status line, standard headers, and body; Content-Length is
/// always emitted so keep-alive framing is unambiguous.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra headers appended verbatim (name, value).
  std::vector<std::pair<std::string, std::string>> headers;
  /// HEAD responses: headers (including the Content-Length the GET
  /// would have carried, RFC 9110 §9.3.2) without the body bytes.
  bool suppress_body = false;

  static HttpResponse Text(int status, std::string body);
  static HttpResponse Json(int status, std::string body);

  /// Standard reason phrase for \p status ("OK", "Not Found", ...).
  static std::string_view ReasonPhrase(int status);
  /// Renders the full response; \p close emits "Connection: close".
  std::string Serialize(bool close) const;
};

/// \brief Incremental HTTP/1.x request parser with hard input limits.
///
/// Bytes are appended as they arrive (`Append`); `TryNext` consumes at
/// most one complete request per call, so pipelined requests queue up
/// and drain one dispatch at a time. Torn reads are the normal case:
/// the parser keeps partial input buffered and reports kNeedMore.
///
/// On kError the connection is poisoned: `error_status()` names the
/// HTTP status to send (400 malformed, 413 oversized body, 431
/// oversized header section, 501 unsupported transfer encoding, 505
/// bad version) and every later TryNext repeats kError.
class RequestParser {
 public:
  struct Options {
    /// Cap on the request line + header section, bytes.
    size_t max_header_bytes = 16 * 1024;
    /// Cap on Content-Length (the introspection plane is GET-only in
    /// practice; bodies are tolerated but tightly bounded).
    size_t max_body_bytes = 64 * 1024;
  };

  enum class Result { kNeedMore, kReady, kError };

  RequestParser() : RequestParser(Options{}) {}
  explicit RequestParser(const Options& options) : options_(options) {}

  /// Buffers \p data for parsing.
  void Append(std::string_view data);

  /// Parses one complete request out of the buffer into \p out.
  /// kReady consumes the request's bytes (call again for a pipelined
  /// successor); kNeedMore leaves partial input buffered.
  Result TryNext(HttpRequest* out);

  /// HTTP status describing the parse failure (only after kError).
  int error_status() const { return error_status_; }
  std::string_view error_reason() const { return error_reason_; }

  /// Bytes currently buffered but not yet consumed.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }
  /// True when buffered bytes may hold (part of) another request.
  bool has_buffered_input() const { return buffered_bytes() > 0; }

 private:
  Result Fail(int status, std::string_view reason);

  Options options_;
  std::string buffer_;
  /// Prefix of buffer_ already consumed by completed requests; the
  /// buffer is compacted opportunistically instead of per byte.
  size_t consumed_ = 0;
  int error_status_ = 0;
  std::string_view error_reason_;
};

}  // namespace xpred::net

#endif  // XPRED_NET_HTTP_H_
