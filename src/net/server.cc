#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <list>

namespace xpred::net {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status Errno(std::string_view what) {
  return Status::Internal(std::string(what) + ": " + strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

void Router::Handle(std::string path, Handler handler) {
  routes_.emplace_back(std::move(path), std::move(handler));
}

HttpResponse Router::Dispatch(const HttpRequest& request) const {
  for (const auto& [path, handler] : routes_) {
    if (request.path() != path) continue;
    if (request.method != "GET" && request.method != "HEAD") {
      HttpResponse response =
          HttpResponse::Text(405, "method not allowed\n");
      response.headers.emplace_back("Allow", "GET, HEAD");
      return response;
    }
    HttpResponse response = handler(request);
    if (request.method == "HEAD") response.suppress_body = true;
    return response;
  }
  return HttpResponse::Text(404, "not found\n");
}

std::vector<std::string> Router::paths() const {
  std::vector<std::string> out;
  out.reserve(routes_.size());
  for (const auto& [path, handler] : routes_) out.push_back(path);
  return out;
}

HttpServer::HttpServer(Options options, const Router* router)
    : options_(std::move(options)), router_(router) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Errno("bind " + options_.bind_address + ":" +
                     std::to_string(options_.port));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, 64) < 0) {
    Status s = Errno("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    Status s = Errno("getsockname");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  bound_port_ = ntohs(addr.sin_port);

  if (Status s = SetNonBlocking(listen_fd_); !s.ok()) {
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  int pipe_fds[2];
  if (pipe(pipe_fds) < 0) {
    Status s = Errno("pipe");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_).ok();
  SetNonBlocking(wake_write_fd_).ok();

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  char byte = 'x';
  // The pipe is empty except across Stop(); a full pipe still wakes.
  (void)!write(wake_write_fd_, &byte, 1);
  if (thread_.joinable()) thread_.join();
  close(listen_fd_);
  close(wake_read_fd_);
  close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
}

HttpServer::Stats HttpServer::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_over_capacity =
      rejected_over_capacity_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  s.deadline_closes = deadline_closes_.load(std::memory_order_relaxed);
  return s;
}

void HttpServer::AcceptPending(int64_t now_nanos) {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN, or a transient error: retry next poll.
    if (connections_.size() >= options_.max_connections) {
      rejected_over_capacity_.fetch_add(1, std::memory_order_relaxed);
      close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    Connection conn;
    conn.fd = fd;
    conn.parser = RequestParser(options_.parser);
    conn.deadline_nanos =
        now_nanos + options_.connection_deadline_ms * 1'000'000;
    connections_.push_back(std::move(conn));
  }
}

bool HttpServer::DrainRequests(Connection& conn) {
  for (;;) {
    HttpRequest request;
    RequestParser::Result result = conn.parser.TryNext(&request);
    if (result == RequestParser::Result::kNeedMore) return true;
    if (result == RequestParser::Result::kError) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse response = HttpResponse::Text(
          conn.parser.error_status(),
          std::string(conn.parser.error_reason()) + "\n");
      conn.out += response.Serialize(/*close=*/true);
      conn.close_after_flush = true;
      return true;  // Flush the error response before closing.
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    bool close = !request.keep_alive();
    HttpResponse response = router_->Dispatch(request);
    conn.out += response.Serialize(close);
    if (close) {
      conn.close_after_flush = true;
      return true;
    }
  }
}

bool HttpServer::HandleReadable(Connection& conn) {
  char buf[8192];
  for (;;) {
    ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.parser.Append(std::string_view(buf, static_cast<size_t>(n)));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) return false;  // Peer closed.
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  return DrainRequests(conn);
}

bool HttpServer::HandleWritable(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    ssize_t n = write(conn.fd, conn.out.data() + conn.out_offset,
                      conn.out.size() - conn.out_offset);
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  conn.out.clear();
  conn.out_offset = 0;
  return !conn.close_after_flush;
}

void HttpServer::CloseConnection(Connection& conn) {
  if (conn.fd >= 0) close(conn.fd);
  conn.fd = -1;
}

void HttpServer::Serve() {
  std::vector<pollfd> pollfds;
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfds.clear();
    pollfds.push_back({listen_fd_, POLLIN, 0});
    pollfds.push_back({wake_read_fd_, POLLIN, 0});
    int64_t now = NowNanos();
    int64_t nearest_deadline = INT64_MAX;
    for (Connection& conn : connections_) {
      short events = POLLIN;
      if (conn.out_offset < conn.out.size()) events |= POLLOUT;
      pollfds.push_back({conn.fd, events, 0});
      nearest_deadline = std::min(nearest_deadline, conn.deadline_nanos);
    }
    int timeout_ms = 1000;
    if (nearest_deadline != INT64_MAX) {
      int64_t wait_ms = (nearest_deadline - now) / 1'000'000 + 1;
      timeout_ms = static_cast<int>(std::clamp<int64_t>(wait_ms, 0, 1000));
    }
    int ready = poll(pollfds.data(), pollfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    now = NowNanos();
    if (pollfds[1].revents & POLLIN) {
      char drain[16];
      while (read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    // Connections accepted below have no pollfd entry this cycle, so
    // bound the revents walk to the count that was actually polled.
    const size_t polled = pollfds.size() - 2;
    if (pollfds[0].revents & POLLIN) AcceptPending(now);

    size_t i = 0;
    for (auto it = connections_.begin();
         it != connections_.end() && i < polled; ++i) {
      Connection& conn = *it;
      // pollfds[2 + i] tracks *it: both containers were walked in the
      // same order and AcceptPending only appends.
      short revents = pollfds[2 + i].revents;
      bool alive = true;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) alive = false;
      if (alive && (revents & POLLIN)) alive = HandleReadable(conn);
      if (alive && (revents & POLLOUT)) alive = HandleWritable(conn);
      // A handler may queue output without POLLOUT having fired yet;
      // try an eager flush so short responses complete in one pass.
      if (alive && conn.out_offset < conn.out.size()) {
        alive = HandleWritable(conn);
      }
      if (alive && now >= conn.deadline_nanos) {
        deadline_closes_.fetch_add(1, std::memory_order_relaxed);
        alive = false;
      }
      if (!alive) {
        CloseConnection(conn);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (Connection& conn : connections_) CloseConnection(conn);
  connections_.clear();
}

}  // namespace xpred::net
