#ifndef XPRED_NET_HTTP_CLIENT_H_
#define XPRED_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace xpred::net {

/// \brief One fetched HTTP response, minimally parsed.
struct FetchResult {
  int status = 0;
  std::string body;
  /// Lowercased header names, wire order.
  std::vector<std::pair<std::string, std::string>> headers;

  std::string_view Header(std::string_view name) const;
};

/// \brief Blocking `GET http://host:port target` with an overall
/// deadline. Test and bench helper only — the production scrape loop
/// is an external Prometheus, not this client.
Result<FetchResult> HttpGet(std::string_view host, uint16_t port,
                            std::string_view target,
                            int64_t timeout_ms = 5000);

}  // namespace xpred::net

#endif  // XPRED_NET_HTTP_CLIENT_H_
