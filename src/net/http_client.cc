#include "net/http_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

namespace xpred::net {

namespace {

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status Errno(std::string_view what) {
  return Status::Internal(std::string(what) + ": " + strerror(errno));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Waits until \p fd is ready for \p events or the deadline passes.
Status WaitFd(int fd, short events, int64_t deadline_ms) {
  int64_t remaining = deadline_ms - NowMillis();
  if (remaining < 0) remaining = 0;
  pollfd pfd{fd, events, 0};
  int ready = poll(&pfd, 1, static_cast<int>(remaining));
  if (ready < 0) return Errno("poll");
  if (ready == 0) return Status::DeadlineExceeded("http client timeout");
  return Status::OK();
}

}  // namespace

std::string_view FetchResult::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return std::string_view();
}

Result<FetchResult> HttpGet(std::string_view host, uint16_t port,
                            std::string_view target, int64_t timeout_ms) {
  const int64_t deadline_ms = NowMillis() + timeout_ms;

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  struct FdCloser {
    int fd;
    ~FdCloser() { close(fd); }
  } closer{fd};

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, std::string(host).c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host: " + std::string(host));
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("connect");
  }

  std::string request = "GET " + std::string(target) +
                        " HTTP/1.1\r\nHost: " + std::string(host) +
                        "\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    if (Status s = WaitFd(fd, POLLOUT, deadline_ms); !s.ok()) return s;
    ssize_t n = send(fd, request.data() + sent, request.size() - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }

  // Connection: close framing — read to EOF, then split the message.
  std::string raw;
  char buf[8192];
  for (;;) {
    if (Status s = WaitFd(fd, POLLIN, deadline_ms); !s.ok()) return s;
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) break;
    raw.append(buf, static_cast<size_t>(n));
    if (raw.size() > (64u << 20)) {
      return Status::CapacityExceeded("http response exceeds 64 MiB");
    }
  }

  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Internal("truncated http response");
  }
  FetchResult result;
  result.body = raw.substr(header_end + 4);

  std::string_view head(raw.data(), header_end);
  size_t line_end = head.find("\r\n");
  std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || status_line.size() < sp + 4) {
    return Status::Internal("malformed status line");
  }
  result.status = (status_line[sp + 1] - '0') * 100 +
                  (status_line[sp + 2] - '0') * 10 +
                  (status_line[sp + 3] - '0');

  while (line_end != std::string_view::npos) {
    head.remove_prefix(line_end + 2);
    line_end = head.find("\r\n");
    std::string_view line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    result.headers.emplace_back(ToLower(line.substr(0, colon)),
                                std::string(Trim(line.substr(colon + 1))));
  }
  return result;
}

}  // namespace xpred::net
