#ifndef XPRED_NET_SERVER_H_
#define XPRED_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/http.h"

namespace xpred::net {

/// \brief Exact-path request router. GET/HEAD hit the handler; any
/// other method on a known path gets 405, an unknown path 404.
///
/// Registration is not thread-safe: mount every route before handing
/// the router to a running `HttpServer`. Dispatch itself is const.
class Router {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Mounts \p handler at \p path (exact match on the request path;
  /// the query string is ignored for routing).
  void Handle(std::string path, Handler handler);

  HttpResponse Dispatch(const HttpRequest& request) const;

  /// Registered paths in mount order (the index page lists them).
  std::vector<std::string> paths() const;

 private:
  std::vector<std::pair<std::string, Handler>> routes_;
};

/// \brief Minimal poll(2)-based HTTP/1.1 server: one serving thread,
/// non-blocking sockets, per-connection read/write buffering, absolute
/// per-connection deadlines (a slowloris writer gets cut off no matter
/// how steadily it trickles bytes), keep-alive and pipelining.
///
/// All handlers run on the serving thread; they must only touch state
/// that is safe to read from off the owner thread (DESIGN.md §17 — the
/// introspection plane publishes immutable snapshots for exactly this
/// reason).
class HttpServer {
 public:
  struct Options {
    /// Bind address. The introspection plane is loopback-only by
    /// default; exposing it wider is an explicit operator decision.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (see `port()`).
    uint16_t port = 0;
    /// Accepted connections beyond this are closed immediately.
    size_t max_connections = 64;
    /// Absolute lifetime budget for one connection, accept to close.
    /// Generous for a scraper, fatal for a slowloris.
    int64_t connection_deadline_ms = 10'000;
    RequestParser::Options parser;
  };

  /// Monotonic counters, readable from any thread while serving.
  struct Stats {
    uint64_t accepted = 0;
    uint64_t rejected_over_capacity = 0;
    uint64_t requests = 0;
    uint64_t parse_errors = 0;
    uint64_t deadline_closes = 0;
  };

  HttpServer(Options options, const Router* router);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the serving thread. On OK, `port()`
  /// holds the bound port (resolving port 0).
  Status Start();

  /// Wakes the serving thread via the self-pipe, joins it, and closes
  /// every socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return bound_port_; }
  const std::string& bind_address() const { return options_.bind_address; }

  Stats stats() const;

 private:
  struct Connection {
    int fd = -1;
    RequestParser parser;
    /// Bytes queued for the peer; write_offset_ tracks the sent prefix.
    std::string out;
    size_t out_offset = 0;
    /// Steady-clock nanos after which the connection is closed.
    int64_t deadline_nanos = 0;
    bool close_after_flush = false;
  };

  void Serve();
  void AcceptPending(int64_t now_nanos);
  /// Returns false when the connection should be closed.
  bool HandleReadable(Connection& conn);
  bool HandleWritable(Connection& conn);
  /// Parses and dispatches every complete buffered request.
  bool DrainRequests(Connection& conn);
  void CloseConnection(Connection& conn);

  Options options_;
  const Router* router_;

  /// Live connections, serving-thread-only.
  std::list<Connection> connections_;

  int listen_fd_ = -1;
  /// Self-pipe: Stop() writes one byte to wake poll().
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t bound_port_ = 0;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_over_capacity_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> deadline_closes_{0};
};

}  // namespace xpred::net

#endif  // XPRED_NET_SERVER_H_
