#ifndef XPRED_XPATH_PARSER_H_
#define XPRED_XPATH_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xpath/ast.h"

namespace xpred::xpath {

/// \brief Parses the XPath subset used for filtering (see PathExpr for
/// the grammar): child / descendant axes, wildcard name tests,
/// attribute filters, and nested path filters.
///
/// Rejects anything outside the subset (functions, other axes,
/// positional predicates, unions) with kXPathParseError.
Result<PathExpr> ParseXPath(std::string_view text);

}  // namespace xpred::xpath

#endif  // XPRED_XPATH_PARSER_H_
