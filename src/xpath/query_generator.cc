#include "xpath/query_generator.h"

#include <unordered_set>

#include "common/string_util.h"

namespace xpred::xpath {

using xml::ContentParticle;
using xml::Dtd;
using xml::ElementDecl;

const ElementDecl* QueryGenerator::RandomChild(const ElementDecl& decl,
                                               Random* rng) const {
  std::vector<std::string> names;
  decl.content.CollectElementNames(&names);
  if (names.empty()) return nullptr;
  return dtd_->Find(rng->Pick(names));
}

PathExpr QueryGenerator::Generate(Random* rng) const {
  PathExpr expr;
  expr.absolute = options_.absolute;

  uint32_t target_length = static_cast<uint32_t>(
      rng->UniformInt(options_.min_length, options_.max_length));

  // Walk the DTD from the root; decls[i] is the concrete element
  // underlying step i (even when rendered as '*'), so that filters can
  // use declared attributes and children.
  std::vector<const ElementDecl*> decls;
  const ElementDecl* current = dtd_->Find(dtd_->root());

  for (uint32_t i = 0; i < target_length; ++i) {
    Step step;
    if (i == 0) {
      step.axis = Axis::kChild;  // Leading axis; '/' + root element.
    } else {
      step.axis = rng->Bernoulli(options_.descendant_prob)
                      ? Axis::kDescendant
                      : Axis::kChild;
    }

    if (i > 0) {
      // Advance the walk: one level down for '/', one or more for '//'.
      uint32_t levels = 1;
      if (step.axis == Axis::kDescendant && options_.max_descendant_skip > 0) {
        levels += static_cast<uint32_t>(
            rng->Uniform(options_.max_descendant_skip + 1));
      }
      const ElementDecl* next = current;
      bool advanced = false;
      for (uint32_t l = 0; l < levels; ++l) {
        const ElementDecl* child = RandomChild(*next, rng);
        if (child == nullptr) break;
        next = child;
        advanced = true;
      }
      if (!advanced) break;  // Leaf element: the walk cannot continue.
      current = next;
    }

    if (rng->Bernoulli(options_.wildcard_prob)) {
      step.wildcard = true;
    } else {
      step.tag = current->name;
    }
    expr.steps.push_back(std::move(step));
    decls.push_back(current);
  }

  // Degenerate fallback: an expression must have at least one step.
  if (expr.steps.empty()) {
    Step step;
    step.tag = dtd_->root();
    expr.steps.push_back(std::move(step));
    decls.push_back(current);
  }

  if (options_.filters_per_expr > 0) {
    AttachAttributeFilters(&expr, decls, rng);
  }
  if (options_.nested_path_prob > 0 &&
      rng->Bernoulli(options_.nested_path_prob)) {
    AttachNestedPath(&expr, decls, rng);
  }
  return expr;
}

void QueryGenerator::AttachAttributeFilters(
    PathExpr* expr, const std::vector<const ElementDecl*>& decls,
    Random* rng) const {
  // Candidate steps: concrete tag with declared attributes.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < expr->steps.size(); ++i) {
    if (!expr->steps[i].wildcard && !decls[i]->attributes.empty()) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) return;
  for (uint32_t f = 0; f < options_.filters_per_expr; ++f) {
    size_t step_index = candidates[rng->Uniform(candidates.size())];
    const ElementDecl* decl = decls[step_index];
    const xml::AttributeDecl& attr =
        decl->attributes[rng->Uniform(decl->attributes.size())];
    AttributeFilter filter;
    filter.name = attr.name;
    filter.has_comparison = true;
    if (rng->Bernoulli(options_.filter_eq_prob)) {
      filter.op = CompareOp::kEq;
    } else {
      static constexpr CompareOp kOthers[] = {
          CompareOp::kNe, CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
          CompareOp::kGe};
      filter.op = kOthers[rng->Uniform(5)];
    }
    if (!attr.enum_values.empty()) {
      filter.op = rng->Bernoulli(options_.filter_eq_prob) ? CompareOp::kEq
                                                          : CompareOp::kNe;
      filter.value = Literal::String(rng->Pick(attr.enum_values));
    } else {
      filter.value = Literal::Number(static_cast<double>(
          rng->Uniform(options_.filter_value_range)));
    }
    expr->steps[step_index].attribute_filters.push_back(std::move(filter));
  }
}

void QueryGenerator::AttachNestedPath(
    PathExpr* expr, const std::vector<const ElementDecl*>& decls,
    Random* rng) const {
  // Attach a short relative path filter at a random non-wildcard,
  // non-final step whose element has children (the predicate language
  // anchors nested-filter witnesses to tag variables, so wildcard
  // steps cannot carry nested filters).
  std::vector<size_t> candidates;
  for (size_t i = 0; i + 1 < expr->steps.size(); ++i) {
    if (expr->steps[i].wildcard) continue;
    std::vector<std::string> names;
    decls[i]->content.CollectElementNames(&names);
    if (!names.empty()) candidates.push_back(i);
  }
  if (candidates.empty()) return;
  size_t step_index = candidates[rng->Uniform(candidates.size())];

  PathExpr nested;
  nested.absolute = false;
  const ElementDecl* current = decls[step_index];
  uint32_t nested_length = 1 + static_cast<uint32_t>(rng->Uniform(2));
  for (uint32_t i = 0; i < nested_length; ++i) {
    const ElementDecl* child = RandomChild(*current, rng);
    if (child == nullptr) break;
    Step step;
    step.axis = Axis::kChild;
    if (rng->Bernoulli(options_.wildcard_prob) && i + 1 < nested_length) {
      step.wildcard = true;
    } else {
      step.tag = child->name;
    }
    nested.steps.push_back(std::move(step));
    current = child;
  }
  if (!nested.steps.empty()) {
    expr->steps[step_index].nested_paths.push_back(std::move(nested));
  }
}

std::vector<PathExpr> QueryGenerator::GenerateWorkload(size_t count,
                                                       uint64_t seed) const {
  Random rng(seed);
  std::vector<PathExpr> workload;
  workload.reserve(count);
  if (!options_.distinct) {
    for (size_t i = 0; i < count; ++i) workload.push_back(Generate(&rng));
    return workload;
  }
  std::unordered_set<std::string> seen;
  // Generous retry budget: distinct pools deplete on small DTDs.
  size_t budget = count * 60 + 20000;
  while (workload.size() < count && budget-- > 0) {
    PathExpr expr = Generate(&rng);
    if (seen.insert(expr.ToString()).second) {
      workload.push_back(std::move(expr));
    }
  }
  return workload;
}

std::vector<std::string> QueryGenerator::GenerateWorkloadStrings(
    size_t count, uint64_t seed) const {
  std::vector<std::string> out;
  for (const PathExpr& expr : GenerateWorkload(count, seed)) {
    out.push_back(expr.ToString());
  }
  return out;
}

}  // namespace xpred::xpath
