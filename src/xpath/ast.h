#ifndef XPRED_XPATH_AST_H_
#define XPRED_XPATH_AST_H_

#include <string>
#include <vector>

namespace xpred::xpath {

/// How a location step relates to the previous one.
enum class Axis {
  kChild,       ///< '/'
  kDescendant,  ///< '//' (one or more levels down)
};

/// Comparison operator in an attribute filter.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Renders an operator as its XPath spelling ("=", "!=", "<", ...).
const char* CompareOpToString(CompareOp op);

/// \brief A literal compared against an attribute value.
///
/// Numeric literals compare numerically (and coerce the attribute value
/// to a number; a non-numeric attribute value never matches a numeric
/// relational comparison). String literals compare as strings.
struct Literal {
  bool is_number = false;
  double number = 0.0;
  std::string text;

  static Literal Number(double value) {
    Literal l;
    l.is_number = true;
    l.number = value;
    return l;
  }
  static Literal String(std::string value) {
    Literal l;
    l.text = std::move(value);
    return l;
  }

  bool operator==(const Literal&) const = default;

  /// XPath spelling: `3` or `"abc"`.
  std::string ToString() const;
};

/// \brief An attribute-based filter `[@name op literal]` or the
/// existence test `[@name]`.
struct AttributeFilter {
  std::string name;
  /// False for the bare existence test `[@name]`.
  bool has_comparison = false;
  CompareOp op = CompareOp::kEq;
  Literal value;

  bool operator==(const AttributeFilter&) const = default;

  /// True iff an attribute with value \p actual satisfies this filter.
  bool Matches(const std::string& actual) const;

  std::string ToString() const;
};

struct PathExpr;

/// \brief One location step: axis + name test + optional filters.
struct Step {
  Axis axis = Axis::kChild;
  /// True for the '*' name test.
  bool wildcard = false;
  /// Element name; empty when wildcard.
  std::string tag;
  std::vector<AttributeFilter> attribute_filters;
  /// Nested path filters `[rel-path]` (paper §5). Each is evaluated
  /// relative to the element this step matches.
  std::vector<PathExpr> nested_paths;

  bool operator==(const Step&) const;

  /// True if this step carries any filter (attribute or nested).
  bool HasFilters() const {
    return !attribute_filters.empty() || !nested_paths.empty();
  }
};

/// \brief A parsed XPath expression of the supported subset:
///
///   path  := '/'? step (('/' | '//') step)*
///   step  := ('*' | NAME) filter*
///   filter:= '[' '@' NAME (op literal)? ']' | '[' path ']'
///
/// `absolute` records whether the expression started with '/'. Per the
/// paper's matching semantics a relative expression may match starting
/// at any element (equivalent to an absolute expression whose first
/// step uses the descendant axis).
struct PathExpr {
  bool absolute = false;
  std::vector<Step> steps;

  bool operator==(const PathExpr&) const = default;

  /// True iff any step carries an attribute or nested filter.
  bool HasFilters() const;

  /// True iff any step (at any nesting level) has a nested path filter.
  bool HasNestedPaths() const;

  /// Number of location steps.
  size_t length() const { return steps.size(); }

  /// Canonical XPath spelling, e.g. "/a/*//b[@x = 3]".
  std::string ToString() const;
};

}  // namespace xpred::xpath

#endif  // XPRED_XPATH_AST_H_
