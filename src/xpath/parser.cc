#include "xpath/parser.h"

#include <cctype>

#include "common/string_util.h"

namespace xpred::xpath {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<PathExpr> Run() {
    PathExpr expr;
    Status st = ParsePath(&expr, /*top_level=*/true);
    if (!st.ok()) return st;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("unexpected trailing input");
    }
    return expr;
  }

 private:
  Status Fail(const std::string& message) const {
    return Status::XPathParseError(
        StringPrintf("%s at offset %zu in '%.*s'", message.c_str(), pos_,
                     static_cast<int>(text_.size()), text_.data()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.';
  }

  Status ParseName(std::string* out) {
    if (!IsNameStart(Peek())) return Fail("expected name");
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    out->assign(text_.substr(start, pos_ - start));
    return Status::OK();
  }

  /// path := ('/' | '//')? step (('/' | '//') step)*
  Status ParsePath(PathExpr* expr, bool top_level) {
    SkipSpace();
    Axis first_axis = Axis::kChild;
    if (Consume("//")) {
      expr->absolute = top_level;  // In a filter, '//' stays relative.
      first_axis = Axis::kDescendant;
    } else if (Consume("/")) {
      expr->absolute = top_level;
      first_axis = Axis::kChild;
    } else {
      expr->absolute = false;
    }
    XPRED_RETURN_NOT_OK(ParseStep(expr, first_axis));
    for (;;) {
      if (Consume("//")) {
        XPRED_RETURN_NOT_OK(ParseStep(expr, Axis::kDescendant));
      } else if (Consume("/")) {
        XPRED_RETURN_NOT_OK(ParseStep(expr, Axis::kChild));
      } else {
        return Status::OK();
      }
    }
  }

  Status ParseStep(PathExpr* expr, Axis axis) {
    Step step;
    step.axis = axis;
    if (Consume("*")) {
      step.wildcard = true;
    } else if (Consume("@")) {
      return Fail("attribute axis is only supported inside filters");
    } else {
      XPRED_RETURN_NOT_OK(ParseName(&step.tag));
      if (Peek() == '(') return Fail("functions are not supported");
      if (Peek() == ':' ) return Fail("namespaces/axes are not supported");
    }
    while (Peek() == '[') {
      XPRED_RETURN_NOT_OK(ParseFilter(&step));
    }
    expr->steps.push_back(std::move(step));
    return Status::OK();
  }

  /// filter := '[' '@' NAME (op literal)? ']' | '[' path ']'
  Status ParseFilter(Step* step) {
    Consume("[");
    SkipSpace();
    if (Consume("@")) {
      AttributeFilter filter;
      XPRED_RETURN_NOT_OK(ParseName(&filter.name));
      SkipSpace();
      if (Peek() != ']') {
        filter.has_comparison = true;
        XPRED_RETURN_NOT_OK(ParseOp(&filter.op));
        SkipSpace();
        XPRED_RETURN_NOT_OK(ParseLiteral(&filter.value));
        SkipSpace();
      }
      if (!Consume("]")) return Fail("expected ']'");
      step->attribute_filters.push_back(std::move(filter));
      return Status::OK();
    }
    if (std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("positional predicates are not supported");
    }
    PathExpr nested;
    XPRED_RETURN_NOT_OK(ParsePath(&nested, /*top_level=*/false));
    SkipSpace();
    if (!Consume("]")) return Fail("expected ']'");
    step->nested_paths.push_back(std::move(nested));
    return Status::OK();
  }

  Status ParseOp(CompareOp* op) {
    if (Consume("!=")) {
      *op = CompareOp::kNe;
    } else if (Consume("<=")) {
      *op = CompareOp::kLe;
    } else if (Consume(">=")) {
      *op = CompareOp::kGe;
    } else if (Consume("<")) {
      *op = CompareOp::kLt;
    } else if (Consume(">")) {
      *op = CompareOp::kGt;
    } else if (Consume("=")) {
      *op = CompareOp::kEq;
    } else {
      return Fail("expected comparison operator");
    }
    return Status::OK();
  }

  Status ParseLiteral(Literal* literal) {
    char c = Peek();
    if (c == '"' || c == '\'') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != c) ++pos_;
      if (pos_ >= text_.size()) return Fail("unterminated string literal");
      *literal = Literal::String(std::string(text_.substr(start, pos_ - start)));
      ++pos_;
      return Status::OK();
    }
    // Number: [-]?digits[.digits]?
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    std::optional<double> value =
        ParseDouble(text_.substr(start, pos_ - start));
    if (!value.has_value()) return Fail("expected literal");
    *literal = Literal::Number(*value);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<PathExpr> ParseXPath(std::string_view text) {
  if (Trim(text).empty()) {
    return Status::XPathParseError("empty expression");
  }
  Parser parser(Trim(text));
  return parser.Run();
}

}  // namespace xpred::xpath
