#include "xpath/evaluator.h"

#include <algorithm>

namespace xpred::xpath {

using xml::Document;
using xml::Element;
using xml::NodeId;

namespace {

/// Appends all proper descendants of \p node.
void CollectDescendants(const Document& document, NodeId node,
                        std::vector<NodeId>* out) {
  for (NodeId child : document.element(node).children) {
    out->push_back(child);
    CollectDescendants(document, child, out);
  }
}

void SortUnique(std::vector<NodeId>* nodes) {
  std::sort(nodes->begin(), nodes->end());
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

}  // namespace

bool Evaluator::NodeSatisfiesStep(const Step& step, const Document& document,
                                  NodeId node) {
  const Element& element = document.element(node);
  if (!step.wildcard && element.tag != step.tag) return false;
  for (const AttributeFilter& filter : step.attribute_filters) {
    const std::string* value = element.FindAttribute(filter.name);
    if (value == nullptr || !filter.Matches(*value)) return false;
  }
  for (const PathExpr& nested : step.nested_paths) {
    if (!MatchesRelative(nested, document, node)) return false;
  }
  return true;
}

void Evaluator::EvalSteps(const PathExpr& expr, const Document& document,
                          const std::vector<NodeId>& initial,
                          std::vector<NodeId>* out) {
  // `initial` holds the *context* nodes for the first step: candidates
  // are their children (child axis) or descendants (descendant axis).
  std::vector<NodeId> contexts = initial;
  std::vector<NodeId> next;
  for (const Step& step : expr.steps) {
    next.clear();
    for (NodeId ctx : contexts) {
      std::vector<NodeId> candidates;
      if (step.axis == Axis::kChild) {
        candidates = document.element(ctx).children;
      } else {
        CollectDescendants(document, ctx, &candidates);
      }
      for (NodeId candidate : candidates) {
        if (NodeSatisfiesStep(step, document, candidate)) {
          next.push_back(candidate);
        }
      }
    }
    SortUnique(&next);
    contexts = next;
    if (contexts.empty()) break;
  }
  *out = std::move(contexts);
}

std::vector<NodeId> Evaluator::Select(const PathExpr& expr,
                                      const Document& document) {
  std::vector<NodeId> result;
  if (document.empty() || expr.steps.empty()) return result;

  // Model a virtual root above the document element: "/" selects among
  // its children (the root element); "//" selects among its
  // descendants (every element). A relative expression matches
  // starting anywhere, which is exactly the "//" case (paper §3.2:
  // s2 : a is encoded (p_a, >=, 1)).
  std::vector<NodeId> first_candidates;
  Axis first_axis = expr.steps[0].axis;
  if (!expr.absolute) first_axis = Axis::kDescendant;
  if (first_axis == Axis::kChild) {
    first_candidates.push_back(document.root());
  } else {
    first_candidates.push_back(document.root());
    CollectDescendants(document, document.root(), &first_candidates);
  }

  std::vector<NodeId> contexts;
  for (NodeId candidate : first_candidates) {
    if (NodeSatisfiesStep(expr.steps[0], document, candidate)) {
      contexts.push_back(candidate);
    }
  }
  SortUnique(&contexts);
  if (expr.steps.size() == 1) return contexts;

  PathExpr rest;
  rest.absolute = true;
  rest.steps.assign(expr.steps.begin() + 1, expr.steps.end());
  EvalSteps(rest, document, contexts, &result);
  return result;
}

bool Evaluator::Matches(const PathExpr& expr, const Document& document) {
  return !Select(expr, document).empty();
}

bool Evaluator::MatchesRelative(const PathExpr& expr,
                                const Document& document, NodeId context) {
  if (expr.steps.empty()) return false;
  std::vector<NodeId> result;
  EvalSteps(expr, document, {context}, &result);
  return !result.empty();
}

}  // namespace xpred::xpath
