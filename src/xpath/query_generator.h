#ifndef XPRED_XPATH_QUERY_GENERATOR_H_
#define XPRED_XPATH_QUERY_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "xml/dtd.h"
#include "xpath/ast.h"

namespace xpred::xpath {

/// \brief DTD-guided random XPath workload generator.
///
/// Substitute for the XPath generator of Diao et al. used in the paper
/// (§6.1). Expressions are random root-anchored walks through the
/// DTD's content models, so they are structurally plausible; their
/// selectivity against generated documents is then governed by the DTD
/// (NITF-like: ~few percent matched; PSD-like: most matched), which is
/// the property the experiments rely on.
///
/// Parameter names follow the paper: D (distinct), L (maximum length),
/// W (wildcard probability), DO (descendant-operator probability).
class QueryGenerator {
 public:
  struct Options {
    /// Maximum number of location steps (paper parameter L).
    uint32_t max_length = 6;
    /// Minimum number of location steps.
    uint32_t min_length = 2;
    /// Probability that a location step's name test is '*' (paper W).
    double wildcard_prob = 0.2;
    /// Probability that a location step uses '//' (paper DO).
    double descendant_prob = 0.2;
    /// When true, only distinct expressions are returned (paper D).
    bool distinct = true;
    /// Number of attribute filters attached per expression (paper §6.4
    /// uses 1 and 2). Filters are only attached to steps whose element
    /// declares attributes; if no step qualifies, the expression
    /// carries fewer filters.
    uint32_t filters_per_expr = 0;
    /// Probability that a generated attribute filter is an equality
    /// test; the remainder is split uniformly among != < <= > >=.
    double filter_eq_prob = 0.6;
    /// Attribute literal values are drawn from [0, filter_value_range),
    /// matching DocumentGenerator's value range.
    uint32_t filter_value_range = 25;
    /// Probability that an expression gets one nested path filter
    /// (paper §5 workloads).
    double nested_path_prob = 0.0;
    /// When false, expressions are relative (do not start with '/').
    bool absolute = true;
    /// A '//' step descends up to this many extra DTD levels, so the
    /// descendant operator actually skips levels in matching documents.
    uint32_t max_descendant_skip = 2;
  };

  QueryGenerator(const xml::Dtd* dtd, Options options)
      : dtd_(dtd), options_(options) {}

  /// Generates one expression. Deterministic in the generator state.
  PathExpr Generate(Random* rng) const;

  /// Generates a workload of \p count expressions using \p seed.
  ///
  /// With distinct=true, generation retries until \p count distinct
  /// expressions exist or a retry budget is exhausted (the result may
  /// then be smaller; callers should check). With distinct=false, the
  /// result contains exactly \p count expressions, typically with many
  /// duplicates (the paper's §6.2 duplicate workloads).
  std::vector<PathExpr> GenerateWorkload(size_t count, uint64_t seed) const;

  /// Convenience: workload rendered to strings.
  std::vector<std::string> GenerateWorkloadStrings(size_t count,
                                                   uint64_t seed) const;

 private:
  /// Picks a random element child reachable from \p decl's content
  /// model; nullptr when \p decl has no element children.
  const xml::ElementDecl* RandomChild(const xml::ElementDecl& decl,
                                      Random* rng) const;

  void AttachAttributeFilters(PathExpr* expr,
                              const std::vector<const xml::ElementDecl*>& decls,
                              Random* rng) const;
  void AttachNestedPath(PathExpr* expr,
                        const std::vector<const xml::ElementDecl*>& decls,
                        Random* rng) const;

  const xml::Dtd* dtd_;
  Options options_;
};

}  // namespace xpred::xpath

#endif  // XPRED_XPATH_QUERY_GENERATOR_H_
