#include "xpath/ast.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace xpred::xpath {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string Literal::ToString() const {
  if (is_number) {
    // Integers print without a fractional part.
    if (number == static_cast<double>(static_cast<long long>(number))) {
      return StringPrintf("%lld", static_cast<long long>(number));
    }
    return StringPrintf("%g", number);
  }
  return "\"" + text + "\"";
}

namespace {

template <typename T>
bool Compare(CompareOp op, const T& lhs, const T& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

}  // namespace

bool AttributeFilter::Matches(const std::string& actual) const {
  if (!has_comparison) return true;  // Existence test.
  if (value.is_number) {
    // Allocation-free numeric parse: this runs once per (tuple,
    // constrained pid) during inline predicate matching, which is a
    // hot path on attribute-heavy workloads (§6.4).
    const char* begin = actual.c_str();
    char* end = nullptr;
    double actual_number = std::strtod(begin, &end);
    if (end != begin + actual.size() || actual.empty() ||
        std::isspace(static_cast<unsigned char>(actual.front()))) {
      // A non-numeric value can only satisfy '!='.
      return op == CompareOp::kNe;
    }
    return Compare(op, actual_number, value.number);
  }
  return Compare(op, actual, value.text);
}

std::string AttributeFilter::ToString() const {
  std::string out = "[@" + name;
  if (has_comparison) {
    out += " ";
    out += CompareOpToString(op);
    out += " ";
    out += value.ToString();
  }
  out += "]";
  return out;
}

bool Step::operator==(const Step& other) const {
  return axis == other.axis && wildcard == other.wildcard &&
         tag == other.tag && attribute_filters == other.attribute_filters &&
         nested_paths == other.nested_paths;
}

bool PathExpr::HasFilters() const {
  for (const Step& step : steps) {
    if (step.HasFilters()) return true;
  }
  return false;
}

bool PathExpr::HasNestedPaths() const {
  for (const Step& step : steps) {
    if (!step.nested_paths.empty()) return true;
  }
  return false;
}

std::string PathExpr::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& step = steps[i];
    if (i == 0) {
      if (absolute) {
        out += (step.axis == Axis::kDescendant) ? "//" : "/";
      } else if (step.axis == Axis::kDescendant) {
        // A relative expression with a leading descendant axis prints
        // as "//": semantically identical under the paper's matching.
        out += "//";
      }
    } else {
      out += (step.axis == Axis::kDescendant) ? "//" : "/";
    }
    out += step.wildcard ? "*" : step.tag;
    for (const AttributeFilter& filter : step.attribute_filters) {
      out += filter.ToString();
    }
    for (const PathExpr& nested : step.nested_paths) {
      out += "[" + nested.ToString() + "]";
    }
  }
  return out;
}

}  // namespace xpred::xpath
