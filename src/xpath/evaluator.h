#ifndef XPRED_XPATH_EVALUATOR_H_
#define XPRED_XPATH_EVALUATOR_H_

#include <vector>

#include "xml/document.h"
#include "xpath/ast.h"

namespace xpred::xpath {

/// \brief Brute-force tree-walking evaluator for the supported XPath
/// subset.
///
/// Implements the standard node-set semantics directly on the document
/// tree. This is the correctness oracle for every filtering engine in
/// the library (paper Appendix A proves the predicate encoding
/// equivalent to these semantics), and also serves as the
/// verification stage of the selection-postponed baselines.
class Evaluator {
 public:
  /// True iff \p expr selects a non-empty node set in \p document —
  /// the paper's definition of "the XPE is matched by the document".
  static bool Matches(const PathExpr& expr, const xml::Document& document);

  /// Returns the full node set selected by \p expr (primarily for
  /// tests).
  static std::vector<xml::NodeId> Select(const PathExpr& expr,
                                         const xml::Document& document);

  /// True iff \p expr, interpreted relative to \p context (first step
  /// on the child axis unless written with '//'), selects a non-empty
  /// node set. Used for nested path filters.
  static bool MatchesRelative(const PathExpr& expr,
                              const xml::Document& document,
                              xml::NodeId context);

 private:
  static bool NodeSatisfiesStep(const Step& step,
                                const xml::Document& document,
                                xml::NodeId node);
  static void EvalSteps(const PathExpr& expr, const xml::Document& document,
                        const std::vector<xml::NodeId>& initial,
                        std::vector<xml::NodeId>* out);
};

}  // namespace xpred::xpath

#endif  // XPRED_XPATH_EVALUATOR_H_
