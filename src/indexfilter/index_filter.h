#ifndef XPRED_INDEXFILTER_INDEX_FILTER_H_
#define XPRED_INDEXFILTER_INDEX_FILTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "core/engine.h"
#include "xpath/ast.h"

namespace xpred::indexfilter {

/// \brief Reimplementation of Index-Filter (Bruno et al., ICDE 2003),
/// the paper's index-based comparison baseline.
///
/// Queries are shared in a prefix tree over location steps. For each
/// document, an element index is built — per-tag streams of
/// (start, end, level) interval ids — and the query tree is evaluated
/// top-down with structural containment joins between each node's
/// context set and its children's streams. As in the paper's
/// comparison, the algorithm stops at the first match per expression
/// (the original finds all matches). Wildcard steps join against the
/// stream of all elements, which is why the paper notes that "the size
/// of the index stream of each node augments rapidly" at high wildcard
/// probabilities.
class IndexFilter : public core::FilterEngine {
 public:
  IndexFilter() = default;

  Result<core::ExprId> AddExpression(std::string_view xpath) override;
  Result<core::ExprId> AddParsedExpression(const xpath::PathExpr& expr);

  Status FilterDocument(const xml::Document& document,
                        std::vector<core::ExprId>* matched) override;

  size_t subscription_count() const override { return next_sid_; }
  std::string_view name() const override { return "index-filter"; }

  size_t query_tree_size() const { return nodes_.size(); }
  size_t distinct_expression_count() const { return exprs_.size(); }

  size_t ApproximateMemoryBytes() const override;

 private:
  static constexpr uint32_t kNoNode = UINT32_MAX;

  /// Query prefix-tree node. The root (index 0) is virtual.
  struct QueryNode {
    bool descendant = false;  // Axis from the parent.
    bool wildcard = false;
    SymbolId tag = kInvalidSymbol;
    std::vector<uint32_t> children;
    std::vector<uint32_t> accept;  // Internal expressions ending here.
  };

  struct Internal {
    xpath::PathExpr expr;
    bool needs_verify = false;
    std::vector<core::ExprId> subscribers;
    uint32_t matched_epoch = 0;
  };

  /// Element interval in the per-document index.
  struct Interval {
    uint32_t start = 0;  // Preorder id.
    uint32_t end = 0;    // Last preorder id in the subtree.
    uint32_t level = 0;
  };

  uint32_t InsertPath(const xpath::PathExpr& expr);
  Status EvalNode(uint32_t node_id, const std::vector<Interval>& context,
                const xml::Document& document);
  void MarkAccepts(const QueryNode& node, const xml::Document& document);

  Interner interner_;
  std::vector<QueryNode> nodes_{1};
  std::vector<Internal> exprs_;
  std::unordered_map<std::string, uint32_t> dedup_;
  core::ExprId next_sid_ = 0;

  // Per-document element index.
  std::vector<Interval> intervals_;                    // By preorder id.
  std::unordered_map<SymbolId, std::vector<uint32_t>> streams_;
  std::vector<uint32_t> all_elements_;

  uint32_t doc_epoch_ = 0;
  std::vector<uint32_t> doc_matched_;
};

}  // namespace xpred::indexfilter

#endif  // XPRED_INDEXFILTER_INDEX_FILTER_H_
