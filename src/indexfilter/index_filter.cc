#include "indexfilter/index_filter.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/memory_usage.h"
#include "common/stopwatch.h"
#include "obs/scoped_timer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpred::indexfilter {

using core::ExprId;
using xpath::Axis;
using xpath::PathExpr;
using xpath::Step;

uint32_t IndexFilter::InsertPath(const PathExpr& expr) {
  uint32_t current = 0;
  for (size_t i = 0; i < expr.steps.size(); ++i) {
    const Step& step = expr.steps[i];
    bool descendant = (step.axis == Axis::kDescendant) ||
                      (i == 0 && !expr.absolute);
    SymbolId tag =
        step.wildcard ? kInvalidSymbol : interner_.Intern(step.tag);
    uint32_t found = kNoNode;
    for (uint32_t child : nodes_[current].children) {
      const QueryNode& c = nodes_[child];
      if (c.descendant == descendant && c.wildcard == step.wildcard &&
          c.tag == tag) {
        found = child;
        break;
      }
    }
    if (found == kNoNode) {
      found = static_cast<uint32_t>(nodes_.size());
      QueryNode node;
      node.descendant = descendant;
      node.wildcard = step.wildcard;
      node.tag = tag;
      nodes_.push_back(std::move(node));
      nodes_[current].children.push_back(found);
    }
    current = found;
  }
  return current;
}

Result<ExprId> IndexFilter::AddExpression(std::string_view xpath) {
  Result<PathExpr> parsed = xpath::ParseXPath(xpath);
  if (!parsed.ok()) return parsed.status();
  return AddParsedExpression(*parsed);
}

Result<ExprId> IndexFilter::AddParsedExpression(const PathExpr& expr) {
  if (expr.steps.empty()) {
    return Status::InvalidArgument("expression has no location steps");
  }
  std::string canonical = expr.ToString();
  auto it = dedup_.find(canonical);
  if (it != dedup_.end()) {
    ExprId sid = next_sid_++;
    exprs_[it->second].subscribers.push_back(sid);
    return sid;
  }

  PathExpr skeleton;
  skeleton.absolute = expr.absolute;
  bool needs_verify = false;
  for (const Step& step : expr.steps) {
    Step s;
    s.axis = step.axis;
    s.wildcard = step.wildcard;
    s.tag = step.tag;
    skeleton.steps.push_back(std::move(s));
    if (step.HasFilters()) needs_verify = true;
  }

  uint32_t accept_node = InsertPath(skeleton);
  uint32_t internal = static_cast<uint32_t>(exprs_.size());
  Internal rec;
  rec.expr = expr;
  rec.needs_verify = needs_verify;
  exprs_.push_back(std::move(rec));
  nodes_[accept_node].accept.push_back(internal);

  ExprId sid = next_sid_++;
  exprs_[internal].subscribers.push_back(sid);
  dedup_.emplace(std::move(canonical), internal);
  return sid;
}

void IndexFilter::MarkAccepts(const QueryNode& node,
                              const xml::Document& document) {
  for (uint32_t internal : node.accept) {
    Internal& e = exprs_[internal];
    if (e.matched_epoch == doc_epoch_) continue;
    if (e.needs_verify) {
      // Selection-postponed verification of filter predicates. Charged
      // to the verify stage directly; it remains a subset of the
      // surrounding expression-stage time, as before.
      Stopwatch watch;
      bool ok = xpath::Evaluator::Matches(e.expr, document);
      bound_inst().AddStageNanos(obs::Stage::kVerify,
                           static_cast<uint64_t>(watch.ElapsedNanos()));
      if (!ok) continue;
    }
    e.matched_epoch = doc_epoch_;
    doc_matched_.push_back(internal);
  }
}

// Recursion depth is bounded by the query prefix-tree height (one per
// location step), not by document shape, so no explicit stack needed.
Status IndexFilter::EvalNode(uint32_t node_id,
                             const std::vector<Interval>& context,
                             const xml::Document& document) {
  if (context.empty()) return Status::OK();
  XPRED_RETURN_NOT_OK(budget().CheckDeadline());
  const QueryNode& node = nodes_[node_id];
  if (!node.accept.empty()) MarkAccepts(node, document);
  if (node.children.empty()) return Status::OK();

  for (uint32_t child_id : node.children) {
    const QueryNode& child = nodes_[child_id];
    const std::vector<uint32_t>* stream = &all_elements_;
    if (!child.wildcard) {
      if (child.tag == kInvalidSymbol) continue;  // Tag not in document.
      auto it = streams_.find(child.tag);
      if (it == streams_.end()) continue;
      stream = &it->second;
    }
    // Structural containment join: candidate e joins context c when
    // c.start < e.start <= c.end and the level relation matches the
    // axis. Following the original algorithm, every qualifying
    // (context, element) pair enters the child's stream — the
    // algorithm enumerates match embeddings (it was built to find all
    // matches; the paper's modification only stops *reporting* after
    // the first match per expression). This is also why wildcard-heavy
    // workloads blow up: "the size of the index stream of each node
    // augments rapidly" (§6.3).
    std::vector<Interval> next;
    for (uint32_t element : *stream) {
      XPRED_RETURN_NOT_OK(budget().CheckDeadline());
      const Interval& e = intervals_[element];
      for (const Interval& c : context) {
        if (e.start <= c.start) continue;
        if (e.start > c.end) continue;
        if (child.descendant ? (e.level > c.level)
                             : (e.level == c.level + 1)) {
          next.push_back(e);
        }
      }
    }
    // Guard against combinatorial blowup on pathological recursive
    // documents: beyond this size duplicates cannot change the
    // filtering outcome, only the enumeration cost, so collapse them.
    if (next.size() > 4096) {
      std::sort(next.begin(), next.end(),
                [](const Interval& a, const Interval& b) {
                  return a.start < b.start;
                });
      next.erase(std::unique(next.begin(), next.end(),
                             [](const Interval& a, const Interval& b) {
                               return a.start == b.start;
                             }),
                 next.end());
    }
    XPRED_RETURN_NOT_OK(EvalNode(child_id, next, document));
  }
  return Status::OK();
}

Status IndexFilter::FilterDocument(const xml::Document& document,
                                   std::vector<ExprId>* matched) {
  if (matched == nullptr) {
    return Status::InvalidArgument("matched must not be null");
  }
  XPRED_RETURN_NOT_OK(BeginGoverned(document));
  ++doc_epoch_;
  doc_matched_.clear();
  obs::EngineInstruments& instruments = inst();
  instruments.BeginDocument();
  if (document.empty()) {
    instruments.EndDocument();
    return Status::OK();
  }

  // Stage 1: build the per-document element index (interval numbering
  // plus per-tag streams).
  XPRED_FAULT_POINT(faultsite::kIndexFilterBuildIndex);
  obs::ScopedTimer timer(&instruments, obs::Stage::kPredicate);
  const size_t n = document.size();
  intervals_.assign(n, Interval{});
  streams_.clear();
  all_elements_.clear();
  all_elements_.reserve(n);
  // Elements are stored in preorder; a node's subtree ends where the
  // scan next returns to its level or above. Compute ends by walking
  // backwards and folding children.
  for (size_t i = n; i-- > 0;) {
    const xml::Element& el = document.element(static_cast<xml::NodeId>(i));
    Interval& iv = intervals_[i];
    iv.start = static_cast<uint32_t>(i);
    iv.level = el.depth;
    iv.end = static_cast<uint32_t>(i);
    for (xml::NodeId child : el.children) {
      iv.end = std::max(iv.end, intervals_[child].end);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const xml::Element& el = document.element(static_cast<xml::NodeId>(i));
    SymbolId tag = interner_.Lookup(el.tag);
    all_elements_.push_back(static_cast<uint32_t>(i));
    if (tag != kInvalidSymbol) {
      streams_[tag].push_back(static_cast<uint32_t>(i));
    }
  }
  // Stage 2: top-down evaluation of the query prefix tree from a
  // virtual super-root that contains the whole document.
  // The virtual super-root contains every element, so its children
  // join purely on levels (child axis: level 1 = the document root;
  // descendant axis: any level).
  timer.Rotate(obs::Stage::kOccurrence);
  for (uint32_t child_id : nodes_[0].children) {
    const QueryNode& child = nodes_[child_id];
    const std::vector<uint32_t>* stream = &all_elements_;
    if (!child.wildcard) {
      if (child.tag == kInvalidSymbol) continue;
      auto it = streams_.find(child.tag);
      if (it == streams_.end()) continue;
      stream = &it->second;
    }
    std::vector<Interval> next;
    for (uint32_t element : *stream) {
      const Interval& e = intervals_[element];
      if (child.descendant ? (e.level >= 1) : (e.level == 1)) {
        next.push_back(e);
      }
    }
    XPRED_RETURN_NOT_OK(EvalNode(child_id, next, document));
  }

  timer.Rotate(obs::Stage::kCollect);
  for (uint32_t internal : doc_matched_) {
    const Internal& e = exprs_[internal];
    matched->insert(matched->end(), e.subscribers.begin(),
                    e.subscribers.end());
  }
  timer.Charge();
  instruments.EndDocument();
  return Status::OK();
}

size_t IndexFilter::ApproximateMemoryBytes() const {
  size_t total = interner_.ApproximateMemoryBytes() + VectorBytes(nodes_);
  for (const QueryNode& node : nodes_) {
    total += VectorBytes(node.children) + VectorBytes(node.accept);
  }
  total += VectorBytes(exprs_);
  for (const Internal& e : exprs_) {
    total += VectorBytes(e.expr.steps) + VectorBytes(e.subscribers);
  }
  total += UnorderedOverheadBytes(dedup_);
  for (const auto& [canonical, id] : dedup_) {
    total += sizeof(canonical) + sizeof(id) + StringBytes(canonical);
  }
  return total;
}

}  // namespace xpred::indexfilter
