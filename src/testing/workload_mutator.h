#ifndef XPRED_TESTING_WORKLOAD_MUTATOR_H_
#define XPRED_TESTING_WORKLOAD_MUTATOR_H_

#include <string_view>
#include <vector>

#include "common/random.h"
#include "xml/document.h"
#include "xml/dtd.h"
#include "xpath/ast.h"

namespace xpred::difftest {

/// \brief Grammar-aware mutations over fuzzing workloads.
///
/// The query and document generators only produce DTD-conformant,
/// "typical" inputs; mutations push workloads toward the boundary
/// cases where engines historically disagree — axis semantics at
/// skipped levels, wildcard/anchor interactions, attribute comparisons
/// at operator boundaries, occurrence-count collisions from duplicated
/// subtrees — while staying inside the supported XPath subset (every
/// mutated expression still parses; filters never land on wildcard
/// steps, which the predicate language rejects) and inside well-formed
/// XML (documents may drift off-DTD; the oracle does not care).
class WorkloadMutator {
 public:
  WorkloadMutator(const xml::Dtd* dtd) : dtd_(dtd) {}

  /// Applies one randomly chosen mutation in place. Returns the
  /// mutation name ("axis-flip", "wildcard-inject", "tag-swap",
  /// "attr-boundary", "nested-graft", "nested-drop", "step-dup",
  /// "step-drop"), or "" when no mutation point applies to \p expr.
  std::string_view MutateExpression(xpath::PathExpr* expr, Random* rng) const;

  /// Applies one randomly chosen mutation in place ("tag-swap",
  /// "attr-perturb", "attr-drop", "attr-add", "subtree-dup",
  /// "subtree-drop"), or "" when none applies. The result is always a
  /// well-formed single-rooted document.
  std::string_view MutateDocument(xml::Document* doc, Random* rng) const;

 private:
  std::string_view TryExpressionMutation(xpath::PathExpr* expr, Random* rng,
                                         int which) const;
  std::string_view TryDocumentMutation(xml::Document* doc, Random* rng,
                                       int which) const;

  /// A random element name from the DTD vocabulary.
  const std::string& RandomTag(Random* rng) const;

  const xml::Dtd* dtd_;
};

/// Deep-copies \p doc, skipping the subtree rooted at \p skip
/// (kInvalidNode = copy everything). Exposed for the minimizer.
xml::Document CopyDocument(const xml::Document& doc,
                           xml::NodeId skip = xml::kInvalidNode);

/// Copies the subtree rooted at \p node into a new single-rooted
/// document (the minimizer's root-promotion edit).
xml::Document ExtractSubtree(const xml::Document& doc, xml::NodeId node);

}  // namespace xpred::difftest

#endif  // XPRED_TESTING_WORKLOAD_MUTATOR_H_
