#ifndef XPRED_TESTING_ENGINE_ROSTER_H_
#define XPRED_TESTING_ENGINE_ROSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "core/matcher.h"
#include "core/streaming.h"
#include "xml/document.h"

namespace xpred::difftest {

/// \brief FilterEngine adapter over core::StreamingFilter.
///
/// StreamingFilter is an event-driven front end, not an engine; this
/// adapter owns a Matcher plus a StreamingFilter and implements
/// FilterDocument by replaying the document tree as SAX events. It
/// exists so the differential harness (and the agreement test) can
/// oracle-check the streaming path extraction against the same
/// interface as every other engine.
class StreamingEngine : public core::FilterEngine {
 public:
  explicit StreamingEngine(core::Matcher::Options options = {})
      : matcher_(options), filter_(&matcher_) {}

  Result<core::ExprId> AddExpression(std::string_view xpath) override {
    return matcher_.AddExpression(xpath);
  }

  Status FilterDocument(const xml::Document& document,
                        std::vector<core::ExprId>* matched) override;

  size_t subscription_count() const override {
    return matcher_.subscription_count();
  }
  std::string_view name() const override { return "streaming"; }

  /// Governance lives in the wrapped matcher (the streaming front end
  /// consults the matcher's budget), so limits must be forwarded.
  void set_resource_limits(const ResourceLimits& limits) override {
    core::FilterEngine::set_resource_limits(limits);
    matcher_.set_resource_limits(limits);
  }

  /// The wrapped matcher (for subscription-removal interleavings).
  core::Matcher* matcher() { return &matcher_; }

 private:
  Status EmitElements(const xml::Document& document);

  core::Matcher matcher_;
  core::StreamingFilter filter_;
};

/// \brief One engine configuration in the differential roster.
struct RosterEntry {
  /// Unique, file-name-safe label ("matcher-basic-inline", "yfilter",
  /// "streaming", ...). This is the name used by --engine filtering,
  /// the JSON summary, and .xpredcase engine sections.
  std::string label;
  /// Builds a fresh engine (no shared state with previous builds).
  std::function<std::unique_ptr<core::FilterEngine>()> make;
};

/// All engine configurations under differential test: every Matcher
/// mode x attribute mode, YFilter, XFilter, IndexFilter, and the
/// streaming front end.
std::vector<RosterEntry> FullRoster();

/// FullRoster() restricted to entries whose label equals, or starts
/// with, one of \p filters (empty filters = everything). Unknown
/// filter strings are reported via \p unmatched when non-null.
std::vector<RosterEntry> FilteredRoster(
    const std::vector<std::string>& filters,
    std::vector<std::string>* unmatched = nullptr);

/// Returns the Matcher behind \p engine when the engine supports
/// dynamic subscription removal (Matcher itself or StreamingEngine);
/// nullptr for the automaton/index baselines.
core::Matcher* RemovableMatcherOf(core::FilterEngine* engine);

}  // namespace xpred::difftest

#endif  // XPRED_TESTING_ENGINE_ROSTER_H_
