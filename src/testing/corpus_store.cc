#include "testing/corpus_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace xpred::difftest {

namespace {

constexpr std::string_view kMagic = "xpredcase 1";

/// FNV-1a, for content-derived file names.
uint64_t Fnv64(std::string_view text) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

void AppendVerdicts(const std::vector<int>& verdicts, std::string* out) {
  for (int v : verdicts) {
    out->push_back(v ? '1' : '0');
    out->push_back('\n');
  }
}

/// Splits into lines without the terminators; a trailing newline does
/// not produce an empty final line.
std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

/// Parses the section list of a `mode: churn` case, starting at the
/// first section marker (lines[i]). Layout: one or more `== document`
/// sections, `== script`, `== expected` (one sid line per filter op,
/// `-` for none), `== end`.
Result<Case> ParseChurnSections(const std::vector<std::string_view>& lines,
                                size_t i, Case c) {
  if (i >= lines.size() || lines[i] != "== document") {
    return Status::InvalidArgument("churn case missing '== document'");
  }
  while (i < lines.size() && lines[i] == "== document") {
    ++i;
    std::string doc;
    for (; i < lines.size() && lines[i].rfind("== ", 0) != 0; ++i) {
      doc.append(lines[i]);
      doc.push_back('\n');
    }
    c.documents.push_back(std::move(doc));
  }

  if (i >= lines.size() || lines[i] != "== script") {
    return Status::InvalidArgument("churn case missing '== script'");
  }
  ++i;
  size_t filter_ops = 0;
  for (; i < lines.size() && lines[i].rfind("== ", 0) != 0; ++i) {
    if (lines[i].empty()) continue;
    // Light syntactic gate; ParseChurnOps does the full validation at
    // replay time.
    if (lines[i].rfind("sub ", 0) != 0 && lines[i].rfind("unsub ", 0) != 0 &&
        lines[i] != "publish" && lines[i].rfind("filter ", 0) != 0) {
      return Status::InvalidArgument("bad churn script line: " +
                                     std::string(lines[i]));
    }
    if (lines[i].rfind("filter ", 0) == 0) ++filter_ops;
    c.script.emplace_back(lines[i]);
  }

  if (i >= lines.size() || lines[i] != "== expected") {
    return Status::InvalidArgument("churn case missing '== expected'");
  }
  ++i;
  for (; i < lines.size() && lines[i].rfind("== ", 0) != 0; ++i) {
    if (lines[i].empty()) continue;
    std::vector<uint64_t> sids;
    if (lines[i] != "-") {
      size_t pos = 0;
      std::string_view line = lines[i];
      while (pos < line.size()) {
        size_t end = line.find(' ', pos);
        if (end == std::string_view::npos) end = line.size();
        std::string token(line.substr(pos, end - pos));
        if (token.empty() ||
            token.find_first_not_of("0123456789") != std::string::npos) {
          return Status::InvalidArgument("bad churn expected line: " +
                                         std::string(line));
        }
        sids.push_back(std::strtoull(token.c_str(), nullptr, 10));
        pos = end + 1;
      }
    }
    c.expected_matches.push_back(std::move(sids));
  }
  if (c.expected_matches.size() != filter_ops) {
    return Status::InvalidArgument(
        "churn expected-line count does not match filter-op count");
  }

  if (i >= lines.size() || lines[i] != "== end") {
    return Status::InvalidArgument("missing '== end' marker (truncated?)");
  }
  return c;
}

/// Parses the section list of a `mode: recovery` case, starting at the
/// first section marker (lines[i]). Layout: one or more `== document`
/// sections, `== script`, `== expected` (one table line per sid, may
/// be empty), `== end`.
Result<Case> ParseRecoverySections(const std::vector<std::string_view>& lines,
                                   size_t i, Case c) {
  if (i >= lines.size() || lines[i] != "== document") {
    return Status::InvalidArgument("recovery case missing '== document'");
  }
  while (i < lines.size() && lines[i] == "== document") {
    ++i;
    std::string doc;
    for (; i < lines.size() && lines[i].rfind("== ", 0) != 0; ++i) {
      doc.append(lines[i]);
      doc.push_back('\n');
    }
    c.documents.push_back(std::move(doc));
  }

  if (i >= lines.size() || lines[i] != "== script") {
    return Status::InvalidArgument("recovery case missing '== script'");
  }
  ++i;
  for (; i < lines.size() && lines[i].rfind("== ", 0) != 0; ++i) {
    if (lines[i].empty()) continue;
    // Light syntactic gate; ParseRecoveryOps does the full validation
    // at replay time.
    if (lines[i].rfind("sub ", 0) != 0 && lines[i].rfind("unsub ", 0) != 0 &&
        lines[i] != "publish" && lines[i] != "checkpoint") {
      return Status::InvalidArgument("bad recovery script line: " +
                                     std::string(lines[i]));
    }
    c.script.emplace_back(lines[i]);
  }

  if (i >= lines.size() || lines[i] != "== expected") {
    return Status::InvalidArgument("recovery case missing '== expected'");
  }
  ++i;
  for (; i < lines.size() && lines[i].rfind("== ", 0) != 0; ++i) {
    if (lines[i].empty()) continue;
    if (lines[i].rfind("live ", 0) != 0 && lines[i].rfind("dead ", 0) != 0) {
      return Status::InvalidArgument("bad recovery expected line: " +
                                     std::string(lines[i]));
    }
    c.expected_table.emplace_back(lines[i]);
  }

  if (i >= lines.size() || lines[i] != "== end") {
    return Status::InvalidArgument("missing '== end' marker (truncated?)");
  }
  return c;
}

}  // namespace

std::string SerializeCase(const Case& c) {
  std::string out;
  out.append(kMagic);
  out.push_back('\n');
  if (!c.mode.empty()) out += "mode: " + c.mode + "\n";
  out += "seed: " + std::to_string(c.seed) + "\n";
  if (!c.dtd.empty()) out += "dtd: " + c.dtd + "\n";
  if (c.mode == "recovery") {
    if (!c.fsync.empty()) out += "fsync: " + c.fsync + "\n";
    if (!c.crash_site.empty()) {
      out += "crash_site: " + c.crash_site + "\n";
      out += "crash_visit: " + std::to_string(c.crash_visit) + "\n";
    }
  }
  if (!c.description.empty()) {
    // Header values are single-line; squash any stray newlines.
    std::string desc = c.description;
    for (char& ch : desc) {
      if (ch == '\n' || ch == '\r') ch = ' ';
    }
    out += "description: " + desc + "\n";
  }
  if (c.mode == "churn") {
    for (const std::string& doc : c.documents) {
      out += "== document\n";
      out += doc;
      if (!doc.empty() && doc.back() != '\n') out.push_back('\n');
    }
    out += "== script\n";
    for (const std::string& line : c.script) {
      out += line;
      out.push_back('\n');
    }
    out += "== expected\n";
    for (const std::vector<uint64_t>& sids : c.expected_matches) {
      if (sids.empty()) {
        out += "-\n";
        continue;
      }
      for (size_t i = 0; i < sids.size(); ++i) {
        if (i != 0) out.push_back(' ');
        out += std::to_string(sids[i]);
      }
      out.push_back('\n');
    }
    out += "== end\n";
    return out;
  }
  if (c.mode == "recovery") {
    for (const std::string& doc : c.documents) {
      out += "== document\n";
      out += doc;
      if (!doc.empty() && doc.back() != '\n') out.push_back('\n');
    }
    out += "== script\n";
    for (const std::string& line : c.script) {
      out += line;
      out.push_back('\n');
    }
    out += "== expected\n";
    for (const std::string& line : c.expected_table) {
      out += line;
      out.push_back('\n');
    }
    out += "== end\n";
    return out;
  }
  out += "== document\n";
  out += c.document_xml;
  if (!c.document_xml.empty() && c.document_xml.back() != '\n') {
    out.push_back('\n');
  }
  out += "== expressions\n";
  for (const std::string& expr : c.expressions) {
    out += expr;
    out.push_back('\n');
  }
  out += "== expected\n";
  if (!c.expected_error.empty()) {
    std::string err = c.expected_error;
    for (char& ch : err) {
      if (ch == '\n' || ch == '\r') ch = ' ';
    }
    out += "error: " + err + "\n";
  } else {
    AppendVerdicts(c.expected, &out);
  }
  for (const EngineOutcome& outcome : c.outcomes) {
    out += "== engine " + outcome.engine + "\n";
    if (!outcome.error.empty()) {
      std::string err = outcome.error;
      for (char& ch : err) {
        if (ch == '\n' || ch == '\r') ch = ' ';
      }
      out += "error: " + err + "\n";
    } else {
      AppendVerdicts(outcome.verdicts, &out);
    }
  }
  out += "== end\n";
  return out;
}

Result<Case> DeserializeCase(std::string_view text) {
  std::vector<std::string_view> lines = SplitLines(text);
  if (lines.empty() || lines[0] != kMagic) {
    return Status::InvalidArgument(
        "not a .xpredcase file (missing 'xpredcase 1' header)");
  }

  Case c;
  size_t i = 1;
  // Header: `key: value` lines until the first section marker.
  for (; i < lines.size() && lines[i].rfind("== ", 0) != 0; ++i) {
    std::string_view line = lines[i];
    if (line.empty()) continue;
    size_t colon = line.find(": ");
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed header line: " +
                                     std::string(line));
    }
    std::string_view key = line.substr(0, colon);
    std::string_view value = line.substr(colon + 2);
    if (key == "seed") {
      c.seed = std::strtoull(std::string(value).c_str(), nullptr, 10);
    } else if (key == "mode") {
      if (value != "churn" && value != "recovery") {
        return Status::InvalidArgument("unknown case mode: " +
                                       std::string(value));
      }
      c.mode.assign(value);
    } else if (key == "dtd") {
      c.dtd.assign(value);
    } else if (key == "description") {
      c.description.assign(value);
    } else if (key == "fsync") {
      c.fsync.assign(value);
    } else if (key == "crash_site") {
      c.crash_site.assign(value);
    } else if (key == "crash_visit") {
      c.crash_visit = std::strtoull(std::string(value).c_str(), nullptr, 10);
    } else {
      return Status::InvalidArgument("unknown header key: " +
                                     std::string(key));
    }
  }

  if (c.mode == "churn") return ParseChurnSections(lines, i, std::move(c));
  if (c.mode == "recovery") {
    return ParseRecoverySections(lines, i, std::move(c));
  }
  if (!c.fsync.empty() || !c.crash_site.empty()) {
    return Status::InvalidArgument(
        "fsync/crash_site headers require mode: recovery");
  }

  if (i >= lines.size() || lines[i] != "== document") {
    return Status::InvalidArgument("missing '== document' section");
  }
  ++i;
  for (; i < lines.size() && lines[i].rfind("== ", 0) != 0; ++i) {
    c.document_xml.append(lines[i]);
    c.document_xml.push_back('\n');
  }

  if (i >= lines.size() || lines[i] != "== expressions") {
    return Status::InvalidArgument("missing '== expressions' section");
  }
  ++i;
  for (; i < lines.size() && lines[i].rfind("== ", 0) != 0; ++i) {
    if (!lines[i].empty()) c.expressions.emplace_back(lines[i]);
  }

  if (i >= lines.size() || lines[i] != "== expected") {
    return Status::InvalidArgument("missing '== expected' section");
  }
  ++i;
  for (; i < lines.size() && lines[i].rfind("== ", 0) != 0; ++i) {
    if (lines[i].empty()) continue;
    if (lines[i].rfind("error: ", 0) == 0) {
      if (!c.expected_error.empty() || !c.expected.empty()) {
        return Status::InvalidArgument(
            "expected section mixes error and verdicts");
      }
      c.expected_error.assign(lines[i].substr(7));
      continue;
    }
    if (!c.expected_error.empty()) {
      return Status::InvalidArgument(
          "expected section mixes error and verdicts");
    }
    if (lines[i] != "0" && lines[i] != "1") {
      return Status::InvalidArgument("bad verdict line: " +
                                     std::string(lines[i]));
    }
    c.expected.push_back(lines[i] == "1" ? 1 : 0);
  }
  if (c.expected_error.empty() &&
      c.expected.size() != c.expressions.size()) {
    return Status::InvalidArgument(
        "expected-verdict count does not match expression count");
  }

  bool saw_end = false;
  while (i < lines.size()) {
    std::string_view marker = lines[i];
    if (marker == "== end") {
      saw_end = true;
      ++i;
      break;
    }
    if (marker.rfind("== engine ", 0) != 0) {
      return Status::InvalidArgument("unexpected section: " +
                                     std::string(marker));
    }
    EngineOutcome outcome;
    outcome.engine.assign(marker.substr(10));
    if (outcome.engine.empty()) {
      return Status::InvalidArgument("engine section without a label");
    }
    ++i;
    for (; i < lines.size() && lines[i].rfind("== ", 0) != 0; ++i) {
      std::string_view line = lines[i];
      if (line.empty()) continue;
      if (line.rfind("error: ", 0) == 0) {
        outcome.error.assign(line.substr(7));
      } else if (line == "0" || line == "1") {
        outcome.verdicts.push_back(line == "1" ? 1 : 0);
      } else {
        return Status::InvalidArgument("bad engine verdict line: " +
                                       std::string(line));
      }
    }
    if (outcome.error.empty() &&
        outcome.verdicts.size() != c.expressions.size()) {
      return Status::InvalidArgument(
          "engine-verdict count does not match expression count for " +
          outcome.engine);
    }
    c.outcomes.push_back(std::move(outcome));
  }
  if (!saw_end) {
    return Status::InvalidArgument("missing '== end' marker (truncated?)");
  }
  return c;
}

Status CorpusStore::Save(const Case& c, std::string* path_out) {
  std::string serialized = SerializeCase(c);
  char name[40];
  std::snprintf(name, sizeof(name), "case-%016llx.xpredcase",
                static_cast<unsigned long long>(Fnv64(serialized)));

  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create corpus directory " +
                                   directory_ + ": " + ec.message());
  }
  std::string path = directory_ + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot write " + path);
  }
  out << serialized;
  out.close();
  if (!out) {
    return Status::InvalidArgument("write failed for " + path);
  }
  if (path_out != nullptr) *path_out = path;
  return Status::OK();
}

Result<Case> CorpusStore::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<Case> c = DeserializeCase(buffer.str());
  if (!c.ok()) {
    return Status(c.status().code(), path + ": " + c.status().message());
  }
  return c;
}

Result<std::vector<std::string>> CorpusStore::ListCases() const {
  std::vector<std::string> paths;
  std::error_code ec;
  std::filesystem::directory_iterator it(directory_, ec);
  if (ec) return paths;  // Absent directory: empty corpus.
  for (const auto& entry : it) {
    if (entry.path().extension() == ".xpredcase") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace xpred::difftest
