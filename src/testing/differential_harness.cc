#include "testing/differential_harness.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "common/random.h"
#include "common/stopwatch.h"
#include "testing/case_minimizer.h"
#include "testing/workload_mutator.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/query_generator.h"

namespace xpred::difftest {

namespace {

/// SplitMix64 step: decorrelates per-run seeds from the session seed.
uint64_t MixSeed(uint64_t seed, uint64_t run) {
  uint64_t z = seed + (run + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\t': out.append("\\t"); break;
      case '\r': out.append("\\r"); break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::vector<int> OracleVerdicts(const std::vector<xpath::PathExpr>& exprs,
                                const xml::Document& doc) {
  std::vector<int> verdicts;
  verdicts.reserve(exprs.size());
  for (const xpath::PathExpr& expr : exprs) {
    verdicts.push_back(xpath::Evaluator::Matches(expr, doc) ? 1 : 0);
  }
  return verdicts;
}

struct EngineCheck {
  bool diverged = false;
  std::string kind;  ///< "verdict", "status", or "acceptance".
  std::string error;
  std::vector<int> verdicts;
};

/// Builds a fresh engine, subscribes \p exprs, filters \p doc, and
/// compares against the oracle. The unit of work behind both the
/// minimizer predicate and repro capture.
EngineCheck CheckEngineFresh(const RosterEntry& entry,
                             const xml::Document& doc,
                             const std::vector<std::string>& exprs) {
  EngineCheck check;
  std::unique_ptr<core::FilterEngine> engine = entry.make();
  std::vector<core::ExprId> ids;
  std::vector<xpath::PathExpr> parsed;
  for (const std::string& text : exprs) {
    Result<xpath::PathExpr> expr = xpath::ParseXPath(text);
    if (!expr.ok()) return check;  // Out of scope: oracle can't judge.
    Result<core::ExprId> id = engine->AddExpression(text);
    if (!id.ok()) {
      check.diverged = true;
      check.kind = "acceptance";
      check.error = "AddExpression(" + text + "): " + id.status().ToString();
      return check;
    }
    ids.push_back(*id);
    parsed.push_back(std::move(*expr));
  }
  std::vector<core::ExprId> matched;
  Status st = engine->FilterDocument(doc, &matched);
  if (!st.ok()) {
    check.diverged = true;
    check.kind = "status";
    check.error = "FilterDocument: " + st.ToString();
    return check;
  }
  std::sort(matched.begin(), matched.end());
  std::vector<int> expected = OracleVerdicts(parsed, doc);
  for (size_t i = 0; i < exprs.size(); ++i) {
    int actual =
        std::binary_search(matched.begin(), matched.end(), ids[i]) ? 1 : 0;
    check.verdicts.push_back(actual);
    if (actual != expected[i]) {
      check.diverged = true;
      check.kind = "verdict";
    }
  }
  return check;
}

}  // namespace

DifferentialHarness::DifferentialHarness(Options options)
    : options_(std::move(options)) {}

DifferentialHarness::DifferentialHarness(Options options,
                                         std::vector<RosterEntry> roster)
    : options_(std::move(options)),
      roster_(std::move(roster)),
      roster_overridden_(true) {}

struct DifferentialHarness::RunContext {
  uint64_t run = 0;
  uint64_t run_seed = 0;
  std::string dtd_name;
};

EngineOutcome DifferentialHarness::ReplayCase(const RosterEntry& entry,
                                              const Case& c) {
  EngineOutcome outcome;
  outcome.engine = entry.label;
  Result<xml::Document> doc = xml::Document::Parse(c.document_xml);
  if (!doc.ok()) {
    outcome.error = "document: " + doc.status().ToString();
    return outcome;
  }
  EngineCheck check = CheckEngineFresh(entry, *doc, c.expressions);
  outcome.error = check.error;
  outcome.verdicts = std::move(check.verdicts);
  return outcome;
}

void DifferentialHarness::RecordDivergence(
    RunContext* ctx, const RosterEntry& entry, const std::string& kind,
    const xml::Document& doc, const std::vector<std::string>& exprs,
    Summary* summary) {
  ++summary->mismatches;
  if (summary->cases.size() >= options_.max_cases) return;

  CaseRecord record;
  record.run = ctx->run;
  record.engine = entry.label;
  record.dtd = ctx->dtd_name;
  record.kind = kind;

  std::string doc_xml;
  std::vector<std::string> min_exprs;
  if (options_.minimize) {
    CaseMinimizer::Output minimized = CaseMinimizer::Minimize(
        doc, exprs,
        [&entry](const xml::Document& d, const std::vector<std::string>& e) {
          return CheckEngineFresh(entry, d, e).diverged;
        });
    doc_xml = std::move(minimized.document_xml);
    min_exprs = std::move(minimized.expressions);
    record.document_nodes = minimized.document_nodes;
    record.probes = minimized.probes;
    record.minimized = true;
    record.converged = minimized.converged;
  } else {
    doc_xml = doc.ToXml();
    min_exprs = exprs;
    record.document_nodes = doc.size();
  }

  // Recompute the contract on the (possibly minimized) case.
  Result<xml::Document> min_doc = xml::Document::Parse(doc_xml);
  Case repro;
  repro.seed = ctx->run_seed;
  repro.dtd = ctx->dtd_name;
  repro.document_xml = doc_xml;
  repro.expressions = min_exprs;
  if (min_doc.ok()) {
    std::vector<xpath::PathExpr> parsed;
    for (const std::string& text : min_exprs) {
      Result<xpath::PathExpr> expr = xpath::ParseXPath(text);
      if (expr.ok()) parsed.push_back(std::move(*expr));
    }
    repro.expected = OracleVerdicts(parsed, *min_doc);
    EngineCheck check = CheckEngineFresh(entry, *min_doc, min_exprs);
    EngineOutcome outcome;
    outcome.engine = entry.label;
    outcome.error = check.error;
    outcome.verdicts = std::move(check.verdicts);
    repro.outcomes.push_back(std::move(outcome));
  }
  repro.description =
      entry.label + " " + kind + " divergence (run " +
      std::to_string(ctx->run) + ", seed " + std::to_string(ctx->run_seed) +
      ")";

  // Dedup: the same minimized repro found in several runs is one case.
  std::string serialized = SerializeCase(repro);
  if (std::find(seen_cases_.begin(), seen_cases_.end(), serialized) !=
      seen_cases_.end()) {
    return;
  }
  seen_cases_.push_back(serialized);

  if (!options_.corpus_dir.empty()) {
    CorpusStore store(options_.corpus_dir);
    std::string path;
    if (store.Save(repro, &path).ok()) record.file = path;
  }
  record.repro = std::move(repro);
  summary->cases.push_back(std::move(record));
}

void DifferentialHarness::RunOne(uint64_t run, Summary* summary) {
  RunContext ctx;
  ctx.run = run;
  ctx.run_seed = MixSeed(options_.seed, run);
  Random rng(ctx.run_seed);

  bool use_psd = options_.dtd == "psd" ||
                 (options_.dtd == "both" && run % 2 == 1);
  const xml::Dtd& dtd = use_psd ? xml::PsdLikeDtd() : xml::NitfLikeDtd();
  ctx.dtd_name = use_psd ? "psd" : "nitf";

  // Randomized generator knobs: each run probes a different corner of
  // the workload space (the fixed grid of agreement_test is the
  // complement: stable, named corners).
  static constexpr double kProbs[] = {0.0, 0.2, 0.5, 0.8};
  xpath::QueryGenerator::Options qopts;
  qopts.min_length = 1;
  qopts.max_length = 3 + static_cast<uint32_t>(rng.Uniform(4));
  qopts.wildcard_prob = kProbs[rng.Uniform(4)];
  qopts.descendant_prob = kProbs[rng.Uniform(3)];
  qopts.filters_per_expr = static_cast<uint32_t>(rng.Uniform(3));
  qopts.nested_path_prob = rng.Bernoulli(0.4) ? 0.3 : 0.0;
  qopts.distinct = false;
  xpath::QueryGenerator qgen(&dtd, qopts);
  std::vector<xpath::PathExpr> workload =
      qgen.GenerateWorkload(options_.exprs_per_run, rng.Next());

  WorkloadMutator mutator(&dtd);
  for (xpath::PathExpr& expr : workload) {
    if (rng.Bernoulli(options_.mutation_prob)) {
      if (!mutator.MutateExpression(&expr, &rng).empty()) {
        ++summary->expr_mutations;
      }
    }
  }

  // Serialize and re-parse through the public grammar; anything the
  // oracle-side parser rejects is out of scope for every engine.
  std::vector<std::string> texts;
  std::vector<xpath::PathExpr> parsed;
  for (const xpath::PathExpr& expr : workload) {
    std::string text = expr.ToString();
    Result<xpath::PathExpr> reparsed = xpath::ParseXPath(text);
    if (!reparsed.ok()) {
      ++summary->rejected_expressions;
      continue;
    }
    texts.push_back(std::move(text));
    parsed.push_back(std::move(*reparsed));
  }
  if (texts.empty()) return;

  // Decoy subscription add/remove interleaving plan (shared by every
  // removal-capable engine so the session stays deterministic).
  bool interleave = options_.exercise_removal && rng.Bernoulli(0.4);
  size_t decoys = interleave ? 1 + rng.Uniform(3) : 0;
  if (interleave) ++summary->removal_interleavings;

  // Subscribe every engine. Acceptance is judged per expression: a
  // rejection by some engines but not others is itself a divergence.
  std::vector<std::unique_ptr<core::FilterEngine>> engines;
  std::vector<std::vector<std::optional<core::ExprId>>> ids;
  std::vector<std::vector<std::string>> add_errors;
  for (const RosterEntry& entry : roster_) {
    std::unique_ptr<core::FilterEngine> engine = entry.make();
    core::Matcher* removable = RemovableMatcherOf(engine.get());
    std::vector<core::ExprId> decoy_ids;
    if (removable != nullptr) {
      for (size_t d = 0; d < decoys; ++d) {
        Result<core::ExprId> id =
            engine->AddExpression(texts[d % texts.size()]);
        if (id.ok()) decoy_ids.push_back(*id);
      }
    }
    std::vector<std::optional<core::ExprId>> engine_ids;
    std::vector<std::string> engine_errors(texts.size());
    for (size_t i = 0; i < texts.size(); ++i) {
      Result<core::ExprId> id = engine->AddExpression(texts[i]);
      if (id.ok()) {
        engine_ids.push_back(*id);
      } else {
        engine_ids.push_back(std::nullopt);
        engine_errors[i] = id.status().ToString();
      }
    }
    if (removable != nullptr) {
      // Decoys leave: ids of real subscriptions must stay valid, and
      // shared expression state must survive partial unsubscription.
      for (core::ExprId decoy : decoy_ids) {
        removable->RemoveSubscription(decoy);
      }
    }
    engines.push_back(std::move(engine));
    ids.push_back(std::move(engine_ids));
    add_errors.push_back(std::move(engine_errors));
  }

  // Partition expressions: kept (accepted everywhere) vs divergent
  // (mixed acceptance) vs uniformly rejected (excluded, counted).
  std::vector<size_t> kept;
  xml::Document trivial_doc;
  for (size_t i = 0; i < texts.size(); ++i) {
    size_t rejections = 0;
    for (size_t e = 0; e < engines.size(); ++e) {
      if (!ids[e][i].has_value()) ++rejections;
    }
    if (rejections == 0) {
      kept.push_back(i);
    } else if (rejections == engines.size()) {
      ++summary->rejected_expressions;
    } else {
      if (trivial_doc.empty()) trivial_doc.AddElement(dtd.root(), xml::kInvalidNode);
      for (size_t e = 0; e < engines.size(); ++e) {
        if (!ids[e][i].has_value()) {
          RecordDivergence(&ctx, roster_[e], "acceptance", trivial_doc,
                           {texts[i]}, summary);
        }
      }
    }
  }
  summary->expressions += texts.size();
  if (kept.empty()) return;

  xml::DocumentGenerator::Options dopts;
  dopts.max_depth = options_.doc_max_depth;
  xml::DocumentGenerator dgen(&dtd, dopts);

  for (uint32_t d = 0; d < options_.docs_per_run; ++d) {
    xml::Document doc = dgen.Generate(rng.Next());
    if (doc.empty()) continue;
    if (rng.Bernoulli(options_.mutation_prob)) {
      uint32_t rounds = 1 + static_cast<uint32_t>(rng.Uniform(2));
      for (uint32_t m = 0; m < rounds; ++m) {
        if (!mutator.MutateDocument(&doc, &rng).empty()) {
          ++summary->doc_mutations;
        }
      }
    }
    ++summary->documents;

    std::vector<int> expected(kept.size());
    for (size_t k = 0; k < kept.size(); ++k) {
      expected[k] = xpath::Evaluator::Matches(parsed[kept[k]], doc) ? 1 : 0;
    }

    std::vector<std::string> kept_texts;
    for (size_t k : kept) kept_texts.push_back(texts[k]);

    // Stage every engine's outcome first so chaos mode can recognize a
    // uniform failure (same StatusCode from every engine) — that is the
    // governance contract under fault injection, not a divergence.
    std::vector<Status> statuses;
    std::vector<std::vector<core::ExprId>> matched_lists(engines.size());
    statuses.reserve(engines.size());
    for (size_t e = 0; e < engines.size(); ++e) {
      statuses.push_back(engines[e]->FilterDocument(doc, &matched_lists[e]));
    }
    bool uniform_error = options_.tolerate_uniform_errors;
    for (size_t e = 0; e < engines.size() && uniform_error; ++e) {
      uniform_error = !statuses[e].ok() &&
                      statuses[e].code() == statuses.front().code();
    }

    for (size_t e = 0; e < engines.size(); ++e) {
      std::vector<core::ExprId>& matched = matched_lists[e];
      const Status& st = statuses[e];
      if (!st.ok()) {
        if (!uniform_error) {
          RecordDivergence(&ctx, roster_[e], "status", doc, kept_texts,
                           summary);
        }
        continue;
      }
      std::sort(matched.begin(), matched.end());
      bool diverged = false;
      for (size_t k = 0; k < kept.size(); ++k) {
        int actual = std::binary_search(matched.begin(), matched.end(),
                                        *ids[e][kept[k]])
                         ? 1
                         : 0;
        if (actual != expected[k]) diverged = true;
      }
      summary->verdicts += kept.size();
      if (diverged) {
        RecordDivergence(&ctx, roster_[e], "verdict", doc, kept_texts,
                         summary);
      }
    }
  }
}

Result<DifferentialHarness::Summary> DifferentialHarness::Run() {
  if (options_.dtd != "nitf" && options_.dtd != "psd" &&
      options_.dtd != "both") {
    return Status::InvalidArgument("unknown dtd '" + options_.dtd +
                                   "' (want nitf, psd, or both)");
  }
  if (!roster_overridden_) {
    std::vector<std::string> unmatched;
    roster_ = FilteredRoster(options_.engines, &unmatched);
    if (!unmatched.empty()) {
      return Status::InvalidArgument("unknown engine filter '" +
                                     unmatched.front() + "'");
    }
  }
  if (roster_.empty()) {
    return Status::InvalidArgument("engine roster is empty");
  }

  Summary summary;
  summary.seed = options_.seed;
  summary.runs_requested = options_.runs;
  for (const RosterEntry& entry : roster_) {
    summary.engines.push_back(entry.label);
  }

  Stopwatch budget;
  for (uint64_t run = 0; run < options_.runs; ++run) {
    if (options_.time_budget_seconds > 0 &&
        budget.ElapsedMillis() / 1000.0 >= options_.time_budget_seconds) {
      summary.time_budget_exhausted = true;
      break;
    }
    RunOne(run, &summary);
    ++summary.runs_executed;
  }
  return summary;
}

std::string DifferentialHarness::Summary::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"tool\": \"xpred_fuzz\",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"runs_requested\": " << runs_requested << ",\n";
  out << "  \"runs_executed\": " << runs_executed << ",\n";
  out << "  \"time_budget_exhausted\": "
      << (time_budget_exhausted ? "true" : "false") << ",\n";
  out << "  \"engines\": [";
  for (size_t i = 0; i < engines.size(); ++i) {
    out << (i ? ", " : "") << '"' << JsonEscape(engines[i]) << '"';
  }
  out << "],\n";
  out << "  \"counters\": {\n";
  out << "    \"documents\": " << documents << ",\n";
  out << "    \"expressions\": " << expressions << ",\n";
  out << "    \"verdicts\": " << verdicts << ",\n";
  out << "    \"expr_mutations\": " << expr_mutations << ",\n";
  out << "    \"doc_mutations\": " << doc_mutations << ",\n";
  out << "    \"removal_interleavings\": " << removal_interleavings << ",\n";
  out << "    \"rejected_expressions\": " << rejected_expressions << "\n";
  out << "  },\n";
  out << "  \"mismatches\": " << mismatches << ",\n";
  out << "  \"cases\": [";
  for (size_t c = 0; c < cases.size(); ++c) {
    const CaseRecord& record = cases[c];
    out << (c ? "," : "") << "\n    {\n";
    out << "      \"run\": " << record.run << ",\n";
    out << "      \"engine\": \"" << JsonEscape(record.engine) << "\",\n";
    out << "      \"dtd\": \"" << JsonEscape(record.dtd) << "\",\n";
    out << "      \"kind\": \"" << JsonEscape(record.kind) << "\",\n";
    out << "      \"document_nodes\": " << record.document_nodes << ",\n";
    out << "      \"minimized\": " << (record.minimized ? "true" : "false")
        << ",\n";
    out << "      \"converged\": " << (record.converged ? "true" : "false")
        << ",\n";
    out << "      \"probes\": " << record.probes << ",\n";
    out << "      \"document\": \"" << JsonEscape(record.repro.document_xml)
        << "\",\n";
    out << "      \"expressions\": [";
    for (size_t i = 0; i < record.repro.expressions.size(); ++i) {
      out << (i ? ", " : "") << '"'
          << JsonEscape(record.repro.expressions[i]) << '"';
    }
    out << "],\n";
    out << "      \"expected\": [";
    for (size_t i = 0; i < record.repro.expected.size(); ++i) {
      out << (i ? ", " : "") << record.repro.expected[i];
    }
    out << "],\n";
    out << "      \"actual\": [";
    if (!record.repro.outcomes.empty()) {
      const EngineOutcome& outcome = record.repro.outcomes.front();
      for (size_t i = 0; i < outcome.verdicts.size(); ++i) {
        out << (i ? ", " : "") << outcome.verdicts[i];
      }
    }
    out << "],\n";
    out << "      \"error\": \""
        << JsonEscape(record.repro.outcomes.empty()
                          ? ""
                          : record.repro.outcomes.front().error)
        << "\",\n";
    out << "      \"file\": \"" << JsonEscape(record.file) << "\"\n";
    out << "    }";
  }
  out << (cases.empty() ? "" : "\n  ") << "],\n";
  out << "  \"status\": \"" << (mismatches == 0 ? "agree" : "diverged")
      << "\"\n";
  out << "}\n";
  return out.str();
}

}  // namespace xpred::difftest
