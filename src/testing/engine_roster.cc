#include "testing/engine_roster.h"

#include "exec/parallel_filter.h"
#include "indexfilter/index_filter.h"
#include "xfilter/xfilter.h"
#include "yfilter/yfilter.h"

namespace xpred::difftest {

Status StreamingEngine::EmitElements(const xml::Document& document) {
  // Iterative replay (explicit stack): document depth must never
  // translate into native stack depth anywhere in the pipeline.
  struct Frame {
    xml::NodeId node;
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  const xml::Element& root = document.element(document.root());
  XPRED_RETURN_NOT_OK(filter_.StartElement(root.tag, root.attributes));
  stack.push_back(Frame{document.root()});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const xml::Element& element = document.element(frame.node);
    if (frame.next_child < element.children.size()) {
      xml::NodeId child = element.children[frame.next_child++];
      const xml::Element& child_element = document.element(child);
      XPRED_RETURN_NOT_OK(filter_.StartElement(child_element.tag,
                                               child_element.attributes));
      stack.push_back(Frame{child});
      continue;
    }
    XPRED_RETURN_NOT_OK(filter_.EndElement(element.tag));
    stack.pop_back();
  }
  return Status::OK();
}

Status StreamingEngine::FilterDocument(const xml::Document& document,
                                       std::vector<core::ExprId>* matched) {
  if (matched == nullptr) {
    return Status::InvalidArgument("matched must not be null");
  }
  if (document.empty()) {
    return Status::InvalidArgument("document is empty");
  }
  // Same governance contract as every other engine family: structural
  // limits and the engine.begin_document fault site apply before any
  // events are replayed (the streaming filter then re-enforces depth
  // and attribute caps incrementally through the matcher's budget).
  XPRED_RETURN_NOT_OK(BeginGoverned(document));
  XPRED_RETURN_NOT_OK(filter_.StartDocument());
  XPRED_RETURN_NOT_OK(EmitElements(document));
  XPRED_RETURN_NOT_OK(filter_.EndDocument());
  std::vector<core::ExprId> result = filter_.TakeMatches();
  matched->insert(matched->end(), result.begin(), result.end());
  return Status::OK();
}

namespace {

const char* ModeLabel(core::Matcher::Mode mode) {
  switch (mode) {
    case core::Matcher::Mode::kBasic:
      return "basic";
    case core::Matcher::Mode::kPrefixCovering:
      return "pc";
    case core::Matcher::Mode::kPrefixCoveringAccessPredicate:
      return "pc-ap";
    case core::Matcher::Mode::kTrieDfs:
      return "trie-dfs";
  }
  return "?";
}

const char* AttrLabel(core::AttributeMode mode) {
  return mode == core::AttributeMode::kInline ? "inline" : "sp";
}

}  // namespace

std::vector<RosterEntry> FullRoster() {
  std::vector<RosterEntry> roster;
  for (core::Matcher::Mode mode :
       {core::Matcher::Mode::kBasic, core::Matcher::Mode::kPrefixCovering,
        core::Matcher::Mode::kPrefixCoveringAccessPredicate,
        core::Matcher::Mode::kTrieDfs}) {
    for (core::AttributeMode attr_mode :
         {core::AttributeMode::kInline,
          core::AttributeMode::kSelectionPostponed}) {
      core::Matcher::Options options;
      options.mode = mode;
      options.attribute_mode = attr_mode;
      roster.push_back(RosterEntry{
          std::string("matcher-") + ModeLabel(mode) + "-" +
              AttrLabel(attr_mode),
          [options] { return std::make_unique<core::Matcher>(options); }});
    }
  }
  roster.push_back(RosterEntry{
      "yfilter", [] { return std::make_unique<yfilter::YFilter>(); }});
  roster.push_back(RosterEntry{
      "xfilter", [] { return std::make_unique<xfilter::XFilter>(); }});
  roster.push_back(
      RosterEntry{"index-filter",
                  [] { return std::make_unique<indexfilter::IndexFilter>(); }});
  roster.push_back(RosterEntry{
      "streaming", [] { return std::make_unique<StreamingEngine>(); }});
  roster.push_back(RosterEntry{"parallel", [] {
                                 exec::ParallelFilter::Options options;
                                 options.threads = 2;
                                 options.partitions = 2;
                                 return std::make_unique<exec::ParallelFilter>(
                                     options);
                               }});
  return roster;
}

std::vector<RosterEntry> FilteredRoster(
    const std::vector<std::string>& filters,
    std::vector<std::string>* unmatched) {
  std::vector<RosterEntry> all = FullRoster();
  if (filters.empty()) return all;
  std::vector<RosterEntry> selected;
  std::vector<bool> used(filters.size(), false);
  for (RosterEntry& entry : all) {
    for (size_t f = 0; f < filters.size(); ++f) {
      if (entry.label.rfind(filters[f], 0) == 0) {
        selected.push_back(std::move(entry));
        used[f] = true;
        break;
      }
    }
  }
  if (unmatched != nullptr) {
    for (size_t f = 0; f < filters.size(); ++f) {
      if (!used[f]) unmatched->push_back(filters[f]);
    }
  }
  return selected;
}

core::Matcher* RemovableMatcherOf(core::FilterEngine* engine) {
  if (auto* matcher = dynamic_cast<core::Matcher*>(engine)) return matcher;
  if (auto* streaming = dynamic_cast<StreamingEngine*>(engine)) {
    return streaming->matcher();
  }
  return nullptr;
}

}  // namespace xpred::difftest
