#include "testing/workload_mutator.h"

#include <cstdlib>
#include <string>

namespace xpred::difftest {

using xpath::Axis;
using xpath::AttributeFilter;
using xpath::CompareOp;
using xpath::PathExpr;
using xpath::Step;

namespace {

/// True when \p value spells a plain (optionally negative) integer.
bool IsIntegerText(const std::string& value) {
  if (value.empty()) return false;
  size_t i = value[0] == '-' ? 1 : 0;
  if (i == value.size()) return false;
  for (; i < value.size(); ++i) {
    if (value[i] < '0' || value[i] > '9') return false;
  }
  return true;
}

void CopySubtree(const xml::Document& src, xml::NodeId node,
                 xml::Document* dst, xml::NodeId dst_parent,
                 xml::NodeId skip, xml::NodeId dup) {
  if (node == skip) return;
  xml::NodeId id = dst->AddElement(src.element(node).tag, dst_parent);
  dst->element(id).attributes = src.element(node).attributes;
  dst->element(id).text = src.element(node).text;
  for (xml::NodeId child : src.element(node).children) {
    CopySubtree(src, child, dst, id, skip, dup);
    if (child == dup) {
      // Second copy of the duplicated subtree (no re-duplication).
      CopySubtree(src, child, dst, id, skip, xml::kInvalidNode);
    }
  }
}

xml::Document RebuildDocument(const xml::Document& doc, xml::NodeId skip,
                              xml::NodeId dup) {
  xml::Document out;
  CopySubtree(doc, doc.root(), &out, xml::kInvalidNode, skip, dup);
  return out;
}

}  // namespace

xml::Document CopyDocument(const xml::Document& doc, xml::NodeId skip) {
  return RebuildDocument(doc, skip, xml::kInvalidNode);
}

xml::Document ExtractSubtree(const xml::Document& doc, xml::NodeId node) {
  xml::Document out;
  CopySubtree(doc, node, &out, xml::kInvalidNode, xml::kInvalidNode,
              xml::kInvalidNode);
  return out;
}

const std::string& WorkloadMutator::RandomTag(Random* rng) const {
  const std::vector<xml::ElementDecl>& decls = dtd_->elements();
  return decls[rng->Uniform(decls.size())].name;
}

std::string_view WorkloadMutator::TryExpressionMutation(PathExpr* expr,
                                                        Random* rng,
                                                        int which) const {
  std::vector<Step>& steps = expr->steps;
  switch (which) {
    case 0: {  // axis-flip: '/' <-> '//' on a non-leading step.
      if (steps.size() < 2) return "";
      size_t i = 1 + rng->Uniform(steps.size() - 1);
      steps[i].axis = steps[i].axis == Axis::kChild ? Axis::kDescendant
                                                    : Axis::kChild;
      return "axis-flip";
    }
    case 1: {  // wildcard-inject: only filter-free steps may wildcard
               // (the predicate language anchors filters to tags).
      std::vector<size_t> candidates;
      for (size_t i = 0; i < steps.size(); ++i) {
        if (!steps[i].wildcard && !steps[i].HasFilters()) {
          candidates.push_back(i);
        }
      }
      if (candidates.empty()) return "";
      Step& step = steps[candidates[rng->Uniform(candidates.size())]];
      step.wildcard = true;
      step.tag.clear();
      return "wildcard-inject";
    }
    case 2: {  // tag-swap: another DTD name (often a non-matching edge).
      std::vector<size_t> candidates;
      for (size_t i = 0; i < steps.size(); ++i) {
        if (!steps[i].wildcard) candidates.push_back(i);
      }
      if (candidates.empty()) return "";
      steps[candidates[rng->Uniform(candidates.size())]].tag =
          RandomTag(rng);
      return "tag-swap";
    }
    case 3: {  // attr-boundary: nudge a numeric comparison by one, or
               // swap the operator for its boundary sibling.
      std::vector<AttributeFilter*> filters;
      for (Step& step : steps) {
        for (AttributeFilter& f : step.attribute_filters) {
          if (f.has_comparison && f.value.is_number) filters.push_back(&f);
        }
      }
      if (filters.empty()) return "";
      AttributeFilter* f = filters[rng->Uniform(filters.size())];
      switch (rng->Uniform(3)) {
        case 0:
          f->value.number += 1;
          break;
        case 1:
          f->value.number -= 1;
          break;
        default:
          switch (f->op) {
            case CompareOp::kLt: f->op = CompareOp::kLe; break;
            case CompareOp::kLe: f->op = CompareOp::kLt; break;
            case CompareOp::kGt: f->op = CompareOp::kGe; break;
            case CompareOp::kGe: f->op = CompareOp::kGt; break;
            case CompareOp::kEq: f->op = CompareOp::kNe; break;
            case CompareOp::kNe: f->op = CompareOp::kEq; break;
          }
      }
      return "attr-boundary";
    }
    case 4: {  // nested-graft: a one-step [child] filter on a tag step.
      std::vector<size_t> candidates;
      for (size_t i = 0; i < steps.size(); ++i) {
        if (!steps[i].wildcard) candidates.push_back(i);
      }
      if (candidates.empty()) return "";
      size_t i = candidates[rng->Uniform(candidates.size())];
      PathExpr nested;
      nested.absolute = false;
      Step child;
      child.axis = Axis::kChild;
      // Prefer a DTD child of the step's tag so the filter can match;
      // fall back to an arbitrary vocabulary name.
      const xml::ElementDecl* decl = dtd_->Find(steps[i].tag);
      std::vector<std::string> names;
      if (decl != nullptr) decl->content.CollectElementNames(&names);
      child.tag = names.empty() ? RandomTag(rng) : rng->Pick(names);
      nested.steps.push_back(std::move(child));
      steps[i].nested_paths.push_back(std::move(nested));
      return "nested-graft";
    }
    case 5: {  // nested-drop.
      std::vector<Step*> candidates;
      for (Step& step : steps) {
        if (!step.nested_paths.empty()) candidates.push_back(&step);
      }
      if (candidates.empty()) return "";
      Step* step = candidates[rng->Uniform(candidates.size())];
      step->nested_paths.erase(step->nested_paths.begin() +
                               rng->Uniform(step->nested_paths.size()));
      return "nested-drop";
    }
    case 6: {  // step-dup: repeated tags stress occurrence numbering.
      size_t i = rng->Uniform(steps.size());
      Step copy = steps[i];
      steps.insert(steps.begin() + i, std::move(copy));
      return "step-dup";
    }
    default: {  // step-drop.
      if (steps.size() < 2) return "";
      steps.erase(steps.begin() + rng->Uniform(steps.size()));
      return "step-drop";
    }
  }
}

std::string_view WorkloadMutator::MutateExpression(PathExpr* expr,
                                                   Random* rng) const {
  constexpr int kKinds = 8;
  int first = static_cast<int>(rng->Uniform(kKinds));
  for (int offset = 0; offset < kKinds; ++offset) {
    std::string_view name =
        TryExpressionMutation(expr, rng, (first + offset) % kKinds);
    if (!name.empty()) return name;
  }
  return "";
}

std::string_view WorkloadMutator::TryDocumentMutation(xml::Document* doc,
                                                      Random* rng,
                                                      int which) const {
  const size_t n = doc->size();
  if (n == 0) return "";
  switch (which) {
    case 0: {  // tag-swap.
      doc->element(static_cast<xml::NodeId>(rng->Uniform(n))).tag =
          RandomTag(rng);
      return "tag-swap";
    }
    case 1: {  // attr-perturb: +-1 on an integer attribute value, the
               // operator-boundary counterpart on the document side.
      std::vector<std::pair<xml::NodeId, size_t>> candidates;
      for (xml::NodeId id = 0; id < n; ++id) {
        const std::vector<xml::Attribute>& attrs =
            doc->element(id).attributes;
        for (size_t a = 0; a < attrs.size(); ++a) {
          if (IsIntegerText(attrs[a].value)) candidates.push_back({id, a});
        }
      }
      if (candidates.empty()) return "";
      auto [id, a] = candidates[rng->Uniform(candidates.size())];
      long value = std::strtol(
          doc->element(id).attributes[a].value.c_str(), nullptr, 10);
      value += rng->Bernoulli(0.5) ? 1 : -1;
      doc->element(id).attributes[a].value = std::to_string(value);
      return "attr-perturb";
    }
    case 2: {  // attr-drop.
      std::vector<xml::NodeId> candidates;
      for (xml::NodeId id = 0; id < n; ++id) {
        if (!doc->element(id).attributes.empty()) candidates.push_back(id);
      }
      if (candidates.empty()) return "";
      xml::Element& element =
          doc->element(candidates[rng->Uniform(candidates.size())]);
      element.attributes.erase(element.attributes.begin() +
                               rng->Uniform(element.attributes.size()));
      return "attr-drop";
    }
    case 3: {  // attr-add: a declared attribute when the DTD knows the
               // tag, an off-DTD one otherwise.
      xml::NodeId id = static_cast<xml::NodeId>(rng->Uniform(n));
      xml::Element& element = doc->element(id);
      xml::Attribute attr;
      const xml::ElementDecl* decl = dtd_->Find(element.tag);
      if (decl != nullptr && !decl->attributes.empty()) {
        const xml::AttributeDecl& ad =
            decl->attributes[rng->Uniform(decl->attributes.size())];
        attr.name = ad.name;
        attr.value = ad.enum_values.empty()
                         ? std::to_string(rng->Uniform(25))
                         : rng->Pick(ad.enum_values);
      } else {
        attr.name = "fuzz";
        attr.value = std::to_string(rng->Uniform(25));
      }
      // Duplicate attribute names are not well-formed; replace instead.
      for (xml::Attribute& existing : element.attributes) {
        if (existing.name == attr.name) {
          existing.value = attr.value;
          return "attr-add";
        }
      }
      element.attributes.push_back(std::move(attr));
      return "attr-add";
    }
    case 4: {  // subtree-dup: duplicated occurrence numbers.
      if (n < 2) return "";
      xml::NodeId dup = static_cast<xml::NodeId>(1 + rng->Uniform(n - 1));
      *doc = RebuildDocument(*doc, xml::kInvalidNode, dup);
      return "subtree-dup";
    }
    default: {  // subtree-drop.
      if (n < 2) return "";
      xml::NodeId skip = static_cast<xml::NodeId>(1 + rng->Uniform(n - 1));
      *doc = RebuildDocument(*doc, skip, xml::kInvalidNode);
      return "subtree-drop";
    }
  }
}

std::string_view WorkloadMutator::MutateDocument(xml::Document* doc,
                                                 Random* rng) const {
  constexpr int kKinds = 6;
  int first = static_cast<int>(rng->Uniform(kKinds));
  for (int offset = 0; offset < kKinds; ++offset) {
    std::string_view name =
        TryDocumentMutation(doc, rng, (first + offset) % kKinds);
    if (!name.empty()) return name;
  }
  return "";
}

}  // namespace xpred::difftest
