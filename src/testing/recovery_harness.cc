#include "testing/recovery_harness.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <utility>

#include "common/fault_injection.h"
#include "core/epoch_manager.h"
#include "exec/parallel_filter.h"
#include "storage/durable_store.h"
#include "testing/churn_harness.h"
#include "xml/document.h"

namespace xpred::difftest {

namespace {

constexpr std::string_view kStorageSites[] = {
    faultsite::kStorageWalWrite,
    faultsite::kStorageWalFsync,
    faultsite::kStorageSnapshotRename,
};

std::string FormatSids(const std::vector<core::ExprId>& sids) {
  std::string out = "[";
  for (size_t i = 0; i < sids.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out += std::to_string(sids[i]);
  }
  out.push_back(']');
  return out;
}

/// One durable-prefix op: exactly what must be reconstructible after
/// the crash.
struct OracleOp {
  bool subscribe = false;
  core::ExprId sid = 0;  ///< Unsubscribe victim.
  std::string xpath;     ///< Subscribe expression.
};

/// Replays \p ops into a fresh history-recording manager — the
/// ground-truth state machine fed only by records that survived the
/// kill.
Result<std::unique_ptr<core::IndexEpochManager>> BuildOracleManager(
    const std::vector<OracleOp>& ops, const RecoveryReplayOptions& options) {
  core::IndexEpochManager::Options mopts;
  mopts.partitions = options.partitions;
  mopts.matcher = options.matcher;
  mopts.record_history = true;
  auto manager = std::make_unique<core::IndexEpochManager>(mopts);
  for (const OracleOp& op : ops) {
    if (op.subscribe) {
      Result<core::ExprId> sid = manager->Subscribe(op.xpath);
      if (!sid.ok()) {
        return Status::Internal("oracle rejected a durable subscribe: " +
                                sid.status().message());
      }
    } else {
      Status st = manager->Unsubscribe(op.sid);
      if (!st.ok()) {
        return Status::Internal("oracle rejected a durable unsubscribe: " +
                                st.message());
      }
    }
  }
  Result<uint64_t> epoch = manager->Publish();
  if (!epoch.ok()) return epoch.status();
  return manager;
}

/// The "OpsUpToEpoch rebuild": a fresh single-threaded matcher built
/// from the oracle manager's own op log at its published epoch. Shares
/// no code with the recovered store's partitioned replay.
Result<std::unique_ptr<core::Matcher>> BuildOracleMatcher(
    const core::IndexEpochManager& manager,
    const core::Matcher::Options& matcher_options) {
  Result<std::vector<core::IndexEpochManager::OpView>> ops =
      manager.OpsUpToEpoch(manager.current_epoch());
  if (!ops.ok()) return ops.status();
  auto oracle = std::make_unique<core::Matcher>(matcher_options);
  for (const core::IndexEpochManager::OpView& op : *ops) {
    if (op.subscribe) {
      Result<core::ExprId> sid = oracle->AddExpression(op.xpath);
      if (!sid.ok()) {
        return Status::Internal("oracle matcher rejected a subscribe: " +
                                sid.status().message());
      }
      if (*sid != op.sid) {
        return Status::Internal("oracle matcher sid diverged from the log");
      }
    } else {
      Status st = oracle->RemoveSubscription(op.sid);
      if (!st.ok()) {
        return Status::Internal("oracle matcher rejected an unsubscribe: " +
                                st.message());
      }
    }
  }
  oracle->PrepareForFiltering();
  return oracle;
}

Result<std::vector<std::string>> ExportTable(
    const core::IndexEpochManager& manager) {
  Result<core::IndexEpochManager::SubscriptionExport> exported =
      manager.ExportSubscriptions();
  if (!exported.ok()) return exported.status();
  std::vector<std::string> lines;
  lines.reserve(exported->entries.size());
  for (const core::IndexEpochManager::SubscriptionExport::Entry& entry :
       exported->entries) {
    lines.push_back((entry.live ? "live " : "dead ") + entry.xpath);
  }
  return lines;
}

std::string DescribeTableDiff(const std::vector<std::string>& got,
                              const std::vector<std::string>& want,
                              std::string_view want_name) {
  if (got.size() != want.size()) {
    return "recovered table has " + std::to_string(got.size()) +
           " sids, " + std::string(want_name) + " has " +
           std::to_string(want.size());
  }
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) {
      return "sid " + std::to_string(i) + ": recovered '" + got[i] +
             "', " + std::string(want_name) + " '" + want[i] + "'";
    }
  }
  return "";
}

/// RAII injector swap: installs \p injector, restores the previous one
/// on destruction (the harness must never leak its rules into the
/// recovery pass or the surrounding test).
class ScopedInjector {
 public:
  explicit ScopedInjector(FaultInjector* injector)
      : previous_(FaultInjector::Installed()) {
    FaultInjector::Install(injector);
  }
  ~ScopedInjector() { FaultInjector::Install(previous_); }
  ScopedInjector(const ScopedInjector&) = delete;
  ScopedInjector& operator=(const ScopedInjector&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace

std::vector<std::string> SerializeRecoveryOps(
    std::span<const RecoveryOp> ops) {
  std::vector<std::string> lines;
  lines.reserve(ops.size());
  for (const RecoveryOp& op : ops) {
    switch (op.kind) {
      case RecoveryOp::Kind::kSubscribe:
        lines.push_back("sub " + op.xpath);
        break;
      case RecoveryOp::Kind::kUnsubscribe:
        lines.push_back("unsub " + std::to_string(op.pick));
        break;
      case RecoveryOp::Kind::kPublish:
        lines.push_back("publish");
        break;
      case RecoveryOp::Kind::kCheckpoint:
        lines.push_back("checkpoint");
        break;
    }
  }
  return lines;
}

Result<std::vector<RecoveryOp>> ParseRecoveryOps(
    std::span<const std::string> lines) {
  std::vector<RecoveryOp> ops;
  ops.reserve(lines.size());
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    RecoveryOp op;
    if (line.rfind("sub ", 0) == 0) {
      op.kind = RecoveryOp::Kind::kSubscribe;
      op.xpath = line.substr(4);
      if (op.xpath.empty()) {
        return Status::InvalidArgument("recovery op 'sub' without expression");
      }
    } else if (line.rfind("unsub ", 0) == 0) {
      op.kind = RecoveryOp::Kind::kUnsubscribe;
      op.pick = static_cast<uint32_t>(
          std::strtoul(line.c_str() + 6, nullptr, 10));
    } else if (line == "publish") {
      op.kind = RecoveryOp::Kind::kPublish;
    } else if (line == "checkpoint") {
      op.kind = RecoveryOp::Kind::kCheckpoint;
    } else {
      return Status::InvalidArgument("bad recovery op line: " + line);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

Result<RecoveryReplayResult> ReplayRecoveryScript(
    const RecoveryScript& script, const RecoveryReplayOptions& options) {
  if (options.scratch_directory.empty()) {
    return Status::InvalidArgument(
        "recovery replay needs a scratch directory");
  }
  Result<storage::FsyncPolicy> fsync = storage::ParseFsyncPolicy(script.fsync);
  if (!fsync.ok()) return fsync.status();

  std::vector<xml::Document> docs;
  docs.reserve(script.documents.size());
  for (const std::string& text : script.documents) {
    Result<xml::Document> doc = xml::Document::Parse(text);
    if (!doc.ok()) return doc.status();
    docs.push_back(std::move(*doc));
  }

  std::error_code ec;
  std::filesystem::remove_all(options.scratch_directory, ec);
  std::filesystem::create_directories(options.scratch_directory, ec);
  if (ec) {
    return Status::Internal("cannot create scratch directory " +
                            options.scratch_directory + ": " + ec.message());
  }

  RecoveryReplayResult result;

  storage::DurableSubscriptionStore::Options sopts;
  sopts.directory = options.scratch_directory;
  sopts.fsync = *fsync;
  sopts.wal_segment_bytes = options.wal_segment_bytes;
  sopts.snapshots_to_keep = options.snapshots_to_keep;
  sopts.partitions = options.partitions;
  sopts.matcher = options.matcher;

  std::vector<OracleOp> durable;
  {
    // The injector stays installed for the whole pre-crash run (an
    // empty rule set still counts visits — the enumeration domain),
    // and is swapped out before recovery: recovery itself runs
    // fault-free.
    FaultInjector injector(script.seed);
    if (!script.crash_site.empty()) {
      FaultInjector::Rule rule;
      rule.site = script.crash_site;
      rule.kind = FaultInjector::FaultKind::kStatusFailure;
      rule.code = StatusCode::kInternal;
      rule.message = "injected crash";
      rule.offset = script.crash_visit;
      rule.period = uint64_t{1} << 62;  // Fire once.
      injector.AddRule(std::move(rule));
    }
    ScopedInjector installed(&injector);

    Result<std::unique_ptr<storage::DurableSubscriptionStore>> opened =
        storage::DurableSubscriptionStore::Open(sopts);
    XPRED_RETURN_NOT_OK(opened.status());
    std::unique_ptr<storage::DurableSubscriptionStore> store =
        std::move(*opened);

    std::vector<core::ExprId> live;
    for (const RecoveryOp& op : script.ops) {
      const size_t journal_before = injector.journal().size();
      const uint64_t written_before = store->last_written_seq();
      // True when the op that just failed still reached the disk in
      // full (e.g. a die-at-fsync after the frame write): under
      // process-kill semantics its record survives and the oracle must
      // include it.
      auto dying_op_durable = [&] {
        return store->last_written_seq() > written_before;
      };
      bool crashed = false;
      switch (op.kind) {
        case RecoveryOp::Kind::kSubscribe: {
          Result<core::ExprId> sid = store->Subscribe(op.xpath);
          if (sid.ok()) {
            live.push_back(*sid);
            durable.push_back({true, 0, op.xpath});
          } else if (injector.journal().size() > journal_before) {
            if (dying_op_durable()) durable.push_back({true, 0, op.xpath});
            crashed = true;
          }
          // Other rejections (unparseable mutants, capacity) are
          // no-ops by the script contract.
          break;
        }
        case RecoveryOp::Kind::kUnsubscribe: {
          if (live.empty()) break;
          const size_t idx = op.pick % live.size();
          const core::ExprId victim = live[idx];
          Status st = store->Unsubscribe(victim);
          if (st.ok()) {
            live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
            durable.push_back({false, victim, ""});
          } else if (injector.journal().size() > journal_before) {
            if (dying_op_durable()) durable.push_back({false, victim, ""});
            crashed = true;
          } else {
            return Status::Internal("unsubscribe of a live sid failed: " +
                                    st.ToString());
          }
          break;
        }
        case RecoveryOp::Kind::kPublish: {
          Result<uint64_t> epoch = store->Publish();
          if (!epoch.ok()) {
            if (injector.journal().size() > journal_before) {
              // Epoch marks carry no membership; durable or not, the
              // oracle's subscription table is unaffected.
              crashed = true;
            } else {
              return epoch.status();
            }
          }
          break;
        }
        case RecoveryOp::Kind::kCheckpoint: {
          Status st = store->Checkpoint();
          if (!st.ok()) {
            if (injector.journal().size() > journal_before) {
              crashed = true;
            } else {
              return st;
            }
          }
          break;
        }
      }
      if (crashed) {
        result.crashed = true;
        break;
      }
    }

    result.injector_journal = injector.journal();
    for (std::string_view site : kStorageSites) {
      result.fault_site_visits.emplace_back(std::string(site),
                                            injector.visits(site));
    }
    // The kill: the store object dies here; whatever bytes it wrote
    // stay on disk.
    store.reset();
  }
  result.durable_ops = durable.size();

  // --- Recovery -------------------------------------------------------
  Result<std::unique_ptr<storage::DurableSubscriptionStore>> reopened =
      storage::DurableSubscriptionStore::Open(sopts, &result.report);
  if (!reopened.ok()) {
    result.divergence = "recovery failed: " + reopened.status().ToString();
    return result;
  }
  std::unique_ptr<storage::DurableSubscriptionStore> store =
      std::move(*reopened);

  Result<std::vector<std::string>> recovered_table =
      ExportTable(store->manager());
  if (!recovered_table.ok()) return recovered_table.status();
  result.recovered_table = std::move(*recovered_table);

  // --- The oracle -----------------------------------------------------
  Result<std::unique_ptr<core::IndexEpochManager>> oracle_mgr =
      BuildOracleManager(durable, options);
  if (!oracle_mgr.ok()) return oracle_mgr.status();

  Result<std::vector<std::string>> oracle_table =
      ExportTable(**oracle_mgr);
  if (!oracle_table.ok()) return oracle_table.status();
  std::string table_diff = DescribeTableDiff(result.recovered_table,
                                             *oracle_table, "oracle");
  if (!table_diff.empty() && !result.divergence.has_value()) {
    result.divergence = "subscription table diverged: " + table_diff;
  }
  if (!script.expected.empty()) {
    std::string expected_diff = DescribeTableDiff(
        result.recovered_table, script.expected, "expected");
    if (!expected_diff.empty() && !result.divergence.has_value()) {
      result.divergence = "expected table diverged: " + expected_diff;
    }
  }

  if (!docs.empty()) {
    Result<std::unique_ptr<core::Matcher>> oracle_matcher =
        BuildOracleMatcher(**oracle_mgr, options.matcher);
    if (!oracle_matcher.ok()) return oracle_matcher.status();

    exec::ParallelFilter::Options pf_options;
    pf_options.threads = 1;
    exec::ParallelFilter filter(pf_options, &store->manager());
    for (size_t d = 0; d < docs.size(); ++d) {
      exec::CollectingResultSink sink;
      exec::DocRef ref;
      ref.doc = &docs[d];
      XPRED_RETURN_NOT_OK(
          filter.FilterBatch(std::span<const exec::DocRef>(&ref, 1), sink));
      XPRED_RETURN_NOT_OK(sink.results()[0].status);
      std::vector<core::ExprId> matched = sink.results()[0].matched;
      std::sort(matched.begin(), matched.end());

      std::vector<core::ExprId> expected;
      XPRED_RETURN_NOT_OK(
          (*oracle_matcher)->FilterDocument(docs[d], &expected));
      std::sort(expected.begin(), expected.end());

      if (matched != expected && !result.divergence.has_value()) {
        result.divergence = "match set diverged on document " +
                            std::to_string(d) + ": recovered=" +
                            FormatSids(matched) + " oracle=" +
                            FormatSids(expected);
      }
      result.engine_matches.push_back(std::move(matched));
      result.oracle_matches.push_back(std::move(expected));
    }
  }
  return result;
}

RecoveryScript GenerateRecoveryScript(const RecoveryScriptOptions& options) {
  // Reuse the seeded churn generator (documents + expression pool +
  // op mix); its filter ops become checkpoints, so the generated
  // script always ends publish-then-checkpoint.
  ChurnScriptOptions churn;
  churn.seed = options.seed;
  churn.dtd = options.dtd;
  churn.documents = options.documents;
  churn.doc_max_depth = options.doc_max_depth;
  churn.ops = options.ops;
  churn.query_pool = options.query_pool;
  churn.mutation_prob = options.mutation_prob;
  churn.subscribe_prob = options.subscribe_prob;
  churn.unsubscribe_prob = options.unsubscribe_prob;
  churn.publish_prob = options.publish_prob;
  ChurnScript generated = GenerateChurnScript(churn);

  RecoveryScript script;
  script.seed = options.seed;
  script.dtd = generated.dtd;
  script.fsync = options.fsync;
  script.documents = std::move(generated.documents);
  script.ops.reserve(generated.ops.size());
  for (const ChurnOp& op : generated.ops) {
    RecoveryOp out;
    switch (op.kind) {
      case ChurnOp::Kind::kSubscribe:
        out.kind = RecoveryOp::Kind::kSubscribe;
        out.xpath = op.xpath;
        break;
      case ChurnOp::Kind::kUnsubscribe:
        out.kind = RecoveryOp::Kind::kUnsubscribe;
        out.pick = op.pick;
        break;
      case ChurnOp::Kind::kPublish:
        out.kind = RecoveryOp::Kind::kPublish;
        break;
      case ChurnOp::Kind::kFilter:
        out.kind = RecoveryOp::Kind::kCheckpoint;
        break;
    }
    script.ops.push_back(std::move(out));
  }
  return script;
}

RecoveryHarness::RecoveryHarness(Options options)
    : options_(std::move(options)) {
  options_.partitions = std::max<size_t>(options_.partitions, 1);
  options_.documents = std::max<size_t>(options_.documents, 1);
  options_.ops = std::max<uint32_t>(options_.ops, 3);
}

Result<RecoveryHarness::Report> RecoveryHarness::Run() {
  RecoveryScriptOptions gen;
  gen.seed = options_.seed;
  gen.dtd = options_.dtd;
  gen.fsync = options_.fsync;
  gen.documents = static_cast<uint32_t>(options_.documents);
  gen.ops = options_.ops;
  RecoveryScript script = GenerateRecoveryScript(gen);

  std::string scratch = options_.scratch_directory;
  if (scratch.empty()) {
    scratch = (std::filesystem::temp_directory_path() /
               ("xpred-recovery-" + std::to_string(options_.seed)))
                  .string();
  }

  RecoveryReplayOptions replay;
  replay.partitions = options_.partitions;
  replay.wal_segment_bytes = options_.wal_segment_bytes;
  replay.matcher = options_.matcher;

  Report report;

  // Fault-free pass: establishes the per-site visit counts (the
  // crash-point domain) and proves the script itself recovers cleanly.
  replay.scratch_directory = scratch + "/baseline";
  Result<RecoveryReplayResult> baseline =
      ReplayRecoveryScript(script, replay);
  if (!baseline.ok()) return baseline.status();
  if (baseline->divergence.has_value()) {
    ++report.mismatches;
    report.divergences.push_back("baseline (no crash): " +
                                 *baseline->divergence);
  }

  for (const auto& [site, visits] : baseline->fault_site_visits) {
    SiteReport sr;
    sr.site = site;
    sr.visits = visits;
    uint64_t stride = 1;
    if (options_.max_crash_points_per_site > 0 &&
        visits > options_.max_crash_points_per_site) {
      stride = (visits + options_.max_crash_points_per_site - 1) /
               options_.max_crash_points_per_site;
    }
    for (uint64_t v = 0; v < visits; v += stride) {
      RecoveryScript crash = script;
      crash.crash_site = site;
      crash.crash_visit = v;
      std::string site_tag = site;
      std::replace(site_tag.begin(), site_tag.end(), '.', '_');
      replay.scratch_directory =
          scratch + "/" + site_tag + "-v" + std::to_string(v);
      Result<RecoveryReplayResult> run =
          ReplayRecoveryScript(crash, replay);
      if (!run.ok()) return run.status();
      ++sr.crash_points;
      ++report.crash_points;
      if (run->crashed) ++sr.crashes_fired;
      sr.records_replayed += run->report.wal_records_replayed;
      if (run->report.wal_bytes_truncated > 0) ++sr.torn_tails;
      if (run->divergence.has_value()) {
        ++sr.mismatches;
        ++report.mismatches;
        if (report.divergences.size() < options_.max_divergences) {
          report.divergences.push_back(site + "#" + std::to_string(v) +
                                       ": " + *run->divergence);
        }
      } else {
        ++sr.recoveries;
        ++report.recoveries;
      }
    }
    report.sites.push_back(std::move(sr));
  }

  std::error_code ec;
  std::filesystem::remove_all(scratch, ec);
  return report;
}

}  // namespace xpred::difftest
