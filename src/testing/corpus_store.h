#ifndef XPRED_TESTING_CORPUS_STORE_H_
#define XPRED_TESTING_CORPUS_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xpred::difftest {

/// \brief Per-engine verdicts recorded in a repro case.
struct EngineOutcome {
  /// Roster label ("yfilter", "matcher-pc-ap-inline", ...).
  std::string engine;
  /// One 0/1 verdict per expression; empty when the engine errored.
  std::vector<int> verdicts;
  /// Status error text when the engine failed outright (AddExpression
  /// or FilterDocument); empty on a clean run.
  std::string error;
};

/// \brief A self-contained differential-testing repro: one document,
/// one expression set, the oracle verdicts, and the disagreeing
/// engines' actual verdicts at capture time.
///
/// Serialized as a `.xpredcase` file — a line-oriented text format:
///
///   xpredcase 1
///   seed: 42
///   dtd: nitf
///   description: yfilter disagreed on expr 0
///   == document
///   <a>
///     <b/>
///   </a>
///   == expressions
///   /a/b
///   == expected
///   1
///   == engine yfilter
///   0
///   == end
///
/// Header keys are `key: value` lines before the first section. The
/// document section is raw XML; the expressions section has one
/// canonical XPath per line; expected and engine sections have one
/// 0/1 verdict per line (aligned with the expressions), or a single
/// `error: <message>` line. The trailing `== end` guards truncation.
///
/// An *expected-error* case replaces the expected verdicts with a
/// single `error: <substring>` line: the document is poison by
/// contract — ingestion must fail on every engine and the rejection
/// message must contain the substring. Such cases usually carry no
/// expressions (there is nothing to match).
///
/// A *churn* case (`mode: churn` header) captures a live-subscription
/// workload instead of a single static match: repeated `== document`
/// sections hold the document pool, `== script` holds one churn op
/// per line (`sub <xpath>` / `unsub <pick>` / `publish` /
/// `filter <doc>` — see testing/churn_harness.h), and `== expected`
/// holds one line per *filter op*: the sorted global subscription ids
/// it must match, space-separated, or `-` for none:
///
///   xpredcase 1
///   mode: churn
///   seed: 7
///   == document
///   <a><b/></a>
///   == script
///   sub /a/b
///   publish
///   filter 0
///   == expected
///   0
///   == end
///
/// Churn cases carry no expressions or engine sections; the replay
/// contract is ReplayChurnScript agreeing with both the stored lines
/// and its own rebuild-from-scratch oracle.
///
/// A *recovery* case (`mode: recovery` header) captures a durable-store
/// crash point: `fsync`, `crash_site`, and `crash_visit` headers pin
/// the kill (an empty `crash_site` replays fault-free), `== document`
/// sections hold the post-recovery probe pool, `== script` holds one
/// recovery op per line (`sub <xpath>` / `unsub <pick>` / `publish` /
/// `checkpoint` — see testing/recovery_harness.h), and `== expected`
/// holds the recovered subscription table, one `live <xpath>` or
/// `dead <xpath>` line per sid in sid order:
///
///   xpredcase 1
///   mode: recovery
///   seed: 7
///   fsync: publish
///   crash_site: storage.wal.write
///   crash_visit: 2
///   == document
///   <a><b/></a>
///   == script
///   sub /a/b
///   publish
///   checkpoint
///   == expected
///   live /a/b
///   == end
///
/// The replay contract is ReplayRecoveryScript recovering exactly the
/// stored table (and agreeing with its own durable-prefix oracle).
struct Case {
  uint64_t seed = 0;
  /// "" for classic differential cases, "churn" for live-subscription
  /// script cases, "recovery" for crash/recovery script cases.
  std::string mode;
  std::string dtd;  ///< "nitf", "psd", or "" when unknown/synthetic.
  std::string description;
  std::string document_xml;
  std::vector<std::string> expressions;
  /// Oracle verdicts, one per expression (the replay contract).
  std::vector<int> expected;
  /// Non-empty for expected-error cases: a substring the ingestion
  /// failure message must contain. Mutually exclusive with expected.
  std::string expected_error;
  std::vector<EngineOutcome> outcomes;

  /// \name Churn mode (mode == "churn"); documents/script are shared
  /// with recovery mode.
  ///@{
  std::vector<std::string> documents;  ///< XML text, one per section.
  std::vector<std::string> script;     ///< Serialized churn/recovery ops.
  /// Sorted global sids per filter op, aligned with the script's
  /// filter lines.
  std::vector<std::vector<uint64_t>> expected_matches;
  ///@}

  /// \name Recovery mode (mode == "recovery")
  ///@{
  std::string fsync;       ///< FsyncPolicyName ("" defaults to publish).
  std::string crash_site;  ///< Storage fault site; "" = fault-free.
  uint64_t crash_visit = 0;
  /// Recovered subscription table, one "live <xpath>" / "dead <xpath>"
  /// line per sid in sid order.
  std::vector<std::string> expected_table;
  ///@}
};

/// Serializes \p c to .xpredcase text.
std::string SerializeCase(const Case& c);

/// Parses .xpredcase text; rejects missing sections, verdict counts
/// that disagree with the expression count, and unknown verdicts.
Result<Case> DeserializeCase(std::string_view text);

/// \brief Directory of .xpredcase files — the git-tracked regression
/// corpus plus any fuzzing session's fresh discoveries.
class CorpusStore {
 public:
  explicit CorpusStore(std::string directory)
      : directory_(std::move(directory)) {}

  const std::string& directory() const { return directory_; }

  /// Writes \p c under a content-derived file name
  /// (`case-<fnv64 hex>.xpredcase`, so identical repros dedupe and
  /// re-runs are idempotent). Creates the directory if needed. On
  /// success \p path_out (optional) receives the file path.
  Status Save(const Case& c, std::string* path_out = nullptr);

  /// Loads one case file.
  static Result<Case> Load(const std::string& path);

  /// Sorted paths of every .xpredcase file in the directory. An absent
  /// directory is an empty corpus, not an error.
  Result<std::vector<std::string>> ListCases() const;

 private:
  std::string directory_;
};

}  // namespace xpred::difftest

#endif  // XPRED_TESTING_CORPUS_STORE_H_
