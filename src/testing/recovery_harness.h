#ifndef XPRED_TESTING_RECOVERY_HARNESS_H_
#define XPRED_TESTING_RECOVERY_HARNESS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/matcher.h"
#include "storage/recovery_report.h"

namespace xpred::difftest {

/// \brief One step of a recovery script — a deterministic,
/// serializable sequence of durable-store mutations. Same closure
/// property as ChurnOp: any subsequence is still a valid script
/// (unsubscribe victims are picked modulo the live list), which keeps
/// crash prefixes well-defined.
struct RecoveryOp {
  enum class Kind : uint8_t { kSubscribe, kUnsubscribe, kPublish, kCheckpoint };
  Kind kind = Kind::kSubscribe;
  /// kSubscribe: the expression to subscribe.
  std::string xpath;
  /// kUnsubscribe: victim = live[pick % live.size()] (no-op when empty).
  uint32_t pick = 0;
};

/// \brief A self-contained crash/recovery workload: documents, a
/// mutation script, a crash point (fault site + visit index), and the
/// expected recovered subscription table. Serialized as a
/// `mode: recovery` .xpredcase.
struct RecoveryScript {
  uint64_t seed = 0;
  std::string dtd;            ///< "nitf", "psd", or "" (informational).
  std::string fsync = "publish";  ///< FsyncPolicyName of the run.
  /// faultsite::kStorageWal* / kStorageSnapshotRename; empty = run the
  /// script to completion without a crash.
  std::string crash_site;
  /// 0-based visit index of \p crash_site at which the kill fires.
  uint64_t crash_visit = 0;
  std::vector<std::string> documents;  ///< XML text (post-recovery probes).
  std::vector<RecoveryOp> ops;
  /// Expected recovered subscription table, one line per sid in sid
  /// order: "live <xpath>" or "dead <xpath>". Empty = compute from the
  /// durable-prefix oracle only (used when seeding new cases).
  std::vector<std::string> expected;
};

/// Script text format, one op per line (the `== script` section of a
/// recovery .xpredcase):
///   sub <xpath>
///   unsub <pick>
///   publish
///   checkpoint
std::vector<std::string> SerializeRecoveryOps(std::span<const RecoveryOp> ops);
Result<std::vector<RecoveryOp>> ParseRecoveryOps(
    std::span<const std::string> lines);

struct RecoveryReplayOptions {
  /// Directory holding this replay's WAL/snapshot state. Wiped before
  /// the run. Required.
  std::string scratch_directory;
  size_t partitions = 2;
  /// Small on purpose: rotation and compaction should actually happen
  /// inside a 40-op script.
  size_t wal_segment_bytes = 1024;
  size_t snapshots_to_keep = 2;
  core::Matcher::Options matcher;
};

struct RecoveryReplayResult {
  /// The injected kill fired (always false for an empty crash_site).
  bool crashed = false;
  /// FaultInjector journal lines from the pre-crash run.
  std::vector<std::string> injector_journal;
  /// Visit totals for the storage fault sites during the pre-crash
  /// run — the crash-point enumeration domain.
  std::vector<std::pair<std::string, uint64_t>> fault_site_visits;
  /// Ops whose WAL records reached the disk (the oracle's input).
  uint64_t durable_ops = 0;
  storage::RecoveryReport report;
  /// Recovered table, one "live <xpath>" / "dead <xpath>" line per sid.
  std::vector<std::string> recovered_table;
  /// Sorted global sids per script document: the recovered live engine
  /// (exec::ParallelFilter over the reopened store)...
  std::vector<std::vector<core::ExprId>> engine_matches;
  /// ...versus a from-scratch OpsUpToEpoch rebuild of the
  /// durable-prefix oracle manager.
  std::vector<std::vector<core::ExprId>> oracle_matches;
  /// First discrepancy (table, match set, or expected-table mismatch);
  /// empty = recovery was exact.
  std::optional<std::string> divergence;
};

/// Replays \p script against a storage::DurableSubscriptionStore in
/// \p options.scratch_directory: runs ops until the injected crash
/// point kills the store (torn write / failed fsync / failed rename,
/// per the site's semantics), drops the store, recovers with
/// DurableSubscriptionStore::Open, and differentials the recovered
/// index — subscription table and per-document match sets — against an
/// oracle built from exactly the ops whose WAL records survived.
/// Deterministic: same script + options => same result. A Status error
/// means the harness itself failed; divergences are data.
Result<RecoveryReplayResult> ReplayRecoveryScript(
    const RecoveryScript& script, const RecoveryReplayOptions& options);

/// \brief Seeded random recovery-script generation (fuzzer + tests).
/// The crash point is left empty — callers enumerate or sample crash
/// points against the generated script.
struct RecoveryScriptOptions {
  uint64_t seed = 1;
  std::string dtd = "nitf";  ///< "nitf" or "psd".
  std::string fsync = "publish";
  uint32_t documents = 2;
  uint32_t doc_max_depth = 7;
  uint32_t ops = 40;
  uint32_t query_pool = 12;
  double mutation_prob = 0.35;
  double subscribe_prob = 0.45;
  double unsubscribe_prob = 0.15;
  double publish_prob = 0.25;  ///< Remainder: checkpoint ops.
};
RecoveryScript GenerateRecoveryScript(const RecoveryScriptOptions& options);

/// \brief The tentpole's proof harness: enumerates every visit of
/// every registered storage fault site under a seeded workload, kills
/// the store at each one, recovers, and verifies the recovered index
/// byte-for-byte against the durable-prefix oracle.
class RecoveryHarness {
 public:
  struct Options {
    uint64_t seed = 1;
    std::string dtd = "nitf";
    std::string fsync = "publish";
    size_t documents = 2;
    uint32_t ops = 40;
    size_t partitions = 2;
    size_t wal_segment_bytes = 1024;
    /// Cap per site; visits beyond it are sampled by striding. 0 = all.
    size_t max_crash_points_per_site = 0;
    /// Root for per-crash-point state directories; "" = a seed-derived
    /// directory under the system temp path. Removed after the run.
    std::string scratch_directory;
    core::Matcher::Options matcher;
    size_t max_divergences = 8;
  };

  struct SiteReport {
    std::string site;
    uint64_t visits = 0;        ///< Fault-free visit count (the domain).
    uint64_t crash_points = 0;  ///< Kills actually exercised.
    uint64_t crashes_fired = 0; ///< Rules that fired as scheduled.
    uint64_t recoveries = 0;    ///< Successful reopen + verification runs.
    uint64_t torn_tails = 0;    ///< Recoveries that truncated a torn tail.
    uint64_t records_replayed = 0;
    uint64_t mismatches = 0;
  };

  struct Report {
    std::vector<SiteReport> sites;
    uint64_t crash_points = 0;
    uint64_t recoveries = 0;
    uint64_t mismatches = 0;
    std::vector<std::string> divergences;
  };

  explicit RecoveryHarness(Options options);

  /// Generates the seeded workload, enumerates crash points, and runs
  /// kill/recover/verify for each. A Status error means the harness
  /// itself failed; divergences land in the Report.
  Result<Report> Run();

 private:
  Options options_;
};

}  // namespace xpred::difftest

#endif  // XPRED_TESTING_RECOVERY_HARNESS_H_
