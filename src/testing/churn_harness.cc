#include "testing/churn_harness.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <utility>

#include "common/random.h"
#include "core/epoch_manager.h"
#include "exec/parallel_filter.h"
#include "testing/workload_mutator.h"
#include "xml/document.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/parser.h"
#include "xpath/query_generator.h"

namespace xpred::difftest {

namespace {

std::string FormatSids(const std::vector<core::ExprId>& sids) {
  std::string out = "[";
  for (size_t i = 0; i < sids.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out += std::to_string(sids[i]);
  }
  out.push_back(']');
  return out;
}

const xml::Dtd& DtdByName(const std::string& name) {
  return name == "psd" ? xml::PsdLikeDtd() : xml::NitfLikeDtd();
}

/// Rebuilds a fresh single-threaded matcher representing published
/// epoch \p epoch of \p manager, with identical global subscription
/// ids. This is the oracle: it shares no code with the epoch sides'
/// incremental replay beyond Matcher itself — no partitioning, no
/// local-sid mapping, no snapshot machinery.
Result<std::unique_ptr<core::Matcher>> BuildOracleAtEpoch(
    const core::IndexEpochManager& manager, uint64_t epoch,
    const core::Matcher::Options& matcher_options) {
  Result<std::vector<core::IndexEpochManager::OpView>> ops =
      manager.OpsUpToEpoch(epoch);
  if (!ops.ok()) return ops.status();
  auto oracle = std::make_unique<core::Matcher>(matcher_options);
  for (const core::IndexEpochManager::OpView& op : *ops) {
    if (op.subscribe) {
      Result<core::ExprId> sid = oracle->AddExpression(op.xpath);
      if (!sid.ok()) {
        return Status::Internal("oracle rejected a logged subscribe: " +
                                sid.status().message());
      }
      if (*sid != op.sid) {
        return Status::Internal("oracle sid diverged from the log");
      }
    } else {
      Status st = oracle->RemoveSubscription(op.sid);
      if (!st.ok()) {
        return Status::Internal("oracle rejected a logged unsubscribe: " +
                                st.message());
      }
    }
  }
  oracle->PrepareForFiltering();
  return oracle;
}

}  // namespace

std::vector<std::string> SerializeChurnOps(std::span<const ChurnOp> ops) {
  std::vector<std::string> lines;
  lines.reserve(ops.size());
  for (const ChurnOp& op : ops) {
    switch (op.kind) {
      case ChurnOp::Kind::kSubscribe:
        lines.push_back("sub " + op.xpath);
        break;
      case ChurnOp::Kind::kUnsubscribe:
        lines.push_back("unsub " + std::to_string(op.pick));
        break;
      case ChurnOp::Kind::kPublish:
        lines.push_back("publish");
        break;
      case ChurnOp::Kind::kFilter:
        lines.push_back("filter " + std::to_string(op.doc));
        break;
    }
  }
  return lines;
}

Result<std::vector<ChurnOp>> ParseChurnOps(
    std::span<const std::string> lines) {
  std::vector<ChurnOp> ops;
  ops.reserve(lines.size());
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    ChurnOp op;
    if (line.rfind("sub ", 0) == 0) {
      op.kind = ChurnOp::Kind::kSubscribe;
      op.xpath = line.substr(4);
      if (op.xpath.empty()) {
        return Status::InvalidArgument("churn op 'sub' without expression");
      }
    } else if (line.rfind("unsub ", 0) == 0) {
      op.kind = ChurnOp::Kind::kUnsubscribe;
      op.pick = static_cast<uint32_t>(
          std::strtoul(line.c_str() + 6, nullptr, 10));
    } else if (line == "publish") {
      op.kind = ChurnOp::Kind::kPublish;
    } else if (line.rfind("filter ", 0) == 0) {
      op.kind = ChurnOp::Kind::kFilter;
      op.doc = static_cast<uint32_t>(
          std::strtoul(line.c_str() + 7, nullptr, 10));
    } else {
      return Status::InvalidArgument("bad churn op line: " + line);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::string ChurnDivergence::ToString() const {
  return "filter op #" + std::to_string(op_index) + " (doc " +
         std::to_string(doc) + ") at epoch " + std::to_string(epoch) +
         ": engine=" + FormatSids(engine) + " oracle=" + FormatSids(oracle);
}

Result<ChurnReplayResult> ReplayChurnScript(
    const ChurnScript& script, const ChurnReplayOptions& options) {
  std::vector<xml::Document> docs;
  docs.reserve(script.documents.size());
  for (const std::string& text : script.documents) {
    Result<xml::Document> doc = xml::Document::Parse(text);
    if (!doc.ok()) return doc.status();
    docs.push_back(std::move(*doc));
  }

  core::IndexEpochManager::Options mgr_options;
  mgr_options.partitions = options.partitions;
  mgr_options.matcher = options.matcher;
  mgr_options.record_history = true;
  core::IndexEpochManager manager(mgr_options);

  exec::ParallelFilter::Options pf_options;
  pf_options.threads = options.threads;
  exec::ParallelFilter filter(pf_options, &manager);

  ChurnReplayResult result;
  std::vector<core::ExprId> live;

  for (size_t i = 0; i < script.ops.size(); ++i) {
    const ChurnOp& op = script.ops[i];
    switch (op.kind) {
      case ChurnOp::Kind::kSubscribe: {
        Result<core::ExprId> sid = manager.Subscribe(op.xpath);
        if (sid.ok()) {
          live.push_back(*sid);
          ++result.subscribes;
        } else {
          // Rejections (unparseable mutants, capacity) are data, not
          // errors: the op stays a no-op so subsequences remain valid.
          ++result.rejected_subscribes;
        }
        break;
      }
      case ChurnOp::Kind::kUnsubscribe: {
        if (live.empty()) break;  // No-op by contract.
        const size_t idx = op.pick % live.size();
        XPRED_RETURN_NOT_OK(manager.Unsubscribe(live[idx]));
        live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
        ++result.unsubscribes;
        break;
      }
      case ChurnOp::Kind::kPublish: {
        Result<uint64_t> epoch = manager.Publish();
        if (!epoch.ok()) return epoch.status();
        ++result.epochs_published;
        break;
      }
      case ChurnOp::Kind::kFilter: {
        if (docs.empty()) {
          return Status::InvalidArgument(
              "churn script has a filter op but no documents");
        }
        const uint32_t d =
            op.doc % static_cast<uint32_t>(docs.size());
        exec::CollectingResultSink sink;
        exec::DocRef ref;
        ref.doc = &docs[d];
        Status st =
            filter.FilterBatch(std::span<const exec::DocRef>(&ref, 1), sink);
        XPRED_RETURN_NOT_OK(st);
        std::vector<core::ExprId> matched = sink.results()[0].matched;
        result.filter_results.push_back(matched);
        ++result.filters;

        Result<std::unique_ptr<core::Matcher>> oracle = BuildOracleAtEpoch(
            manager, filter.last_batch_epoch(), options.matcher);
        if (!oracle.ok()) return oracle.status();
        std::vector<core::ExprId> expected;
        XPRED_RETURN_NOT_OK((*oracle)->FilterDocument(docs[d], &expected));
        std::sort(expected.begin(), expected.end());
        if (expected != matched && !result.divergence.has_value()) {
          ChurnDivergence div;
          div.op_index = i;
          div.epoch = filter.last_batch_epoch();
          div.doc = d;
          div.engine = matched;
          div.oracle = expected;
          result.divergence = std::move(div);
        }
        result.oracle_results.push_back(std::move(expected));
        break;
      }
    }
  }
  return result;
}

ChurnScript GenerateChurnScript(const ChurnScriptOptions& options) {
  const xml::Dtd& dtd = DtdByName(options.dtd);
  Random rng(options.seed);

  ChurnScript script;
  script.seed = options.seed;
  script.dtd = options.dtd == "psd" ? "psd" : "nitf";

  xml::DocumentGenerator::Options doc_options;
  doc_options.max_depth = options.doc_max_depth;
  xml::DocumentGenerator doc_gen(&dtd, doc_options);
  const uint32_t num_docs = std::max<uint32_t>(options.documents, 1);
  for (uint32_t i = 0; i < num_docs; ++i) {
    script.documents.push_back(doc_gen.Generate(rng.Next()).ToXml());
  }

  xpath::QueryGenerator::Options query_options;
  query_options.max_length = 5;
  query_options.filters_per_expr = 1;
  query_options.nested_path_prob = 0.15;
  xpath::QueryGenerator query_gen(&dtd, query_options);
  WorkloadMutator mutator(&dtd);
  std::vector<xpath::PathExpr> pool = query_gen.GenerateWorkload(
      std::max<uint32_t>(options.query_pool, 1), rng.Next());
  std::vector<std::string> pool_strings;
  pool_strings.reserve(pool.size());
  for (xpath::PathExpr& expr : pool) {
    if (rng.Bernoulli(options.mutation_prob)) {
      mutator.MutateExpression(&expr, &rng);
    }
    pool_strings.push_back(expr.ToString());
  }
  if (pool_strings.empty()) pool_strings.push_back("/a");

  const uint32_t num_ops = std::max<uint32_t>(options.ops, 3);
  for (uint32_t i = 0; i < num_ops; ++i) {
    ChurnOp op;
    const double r = rng.NextDouble();
    if (i == 0 || r < options.subscribe_prob) {
      op.kind = ChurnOp::Kind::kSubscribe;
      op.xpath = pool_strings[rng.Uniform(pool_strings.size())];
    } else if (r < options.subscribe_prob + options.unsubscribe_prob) {
      op.kind = ChurnOp::Kind::kUnsubscribe;
      op.pick = static_cast<uint32_t>(rng.Uniform(1 << 16));
    } else if (r < options.subscribe_prob + options.unsubscribe_prob +
                       options.publish_prob) {
      op.kind = ChurnOp::Kind::kPublish;
    } else {
      op.kind = ChurnOp::Kind::kFilter;
      op.doc = static_cast<uint32_t>(rng.Uniform(num_docs));
    }
    script.ops.push_back(std::move(op));
  }
  // Every script ends with a publish + filter so queued mutations are
  // always exercised at least once.
  ChurnOp publish;
  publish.kind = ChurnOp::Kind::kPublish;
  script.ops.push_back(std::move(publish));
  ChurnOp filter;
  filter.kind = ChurnOp::Kind::kFilter;
  filter.doc = static_cast<uint32_t>(rng.Uniform(num_docs));
  script.ops.push_back(std::move(filter));
  return script;
}

ChurnMinimizeResult MinimizeChurnScript(const ChurnScript& script,
                                        const ChurnReplayOptions& options,
                                        size_t max_probes) {
  ChurnMinimizeResult out;
  out.script = script;

  auto diverges = [&](const ChurnScript& candidate) {
    ++out.probes;
    Result<ChurnReplayResult> replay = ReplayChurnScript(candidate, options);
    return replay.ok() && replay->divergence.has_value();
  };

  // Greedy chunked op deletion: try removing windows of halving sizes;
  // any removal that still diverges is kept and the scan restarts at
  // the same window size.
  for (size_t window = std::max<size_t>(out.script.ops.size() / 2, 1);
       window >= 1; window /= 2) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t start = 0; start + window <= out.script.ops.size();
           ++start) {
        if (out.probes >= max_probes) {
          out.converged = false;
          return out;
        }
        ChurnScript candidate = out.script;
        candidate.ops.erase(
            candidate.ops.begin() + static_cast<ptrdiff_t>(start),
            candidate.ops.begin() + static_cast<ptrdiff_t>(start + window));
        if (diverges(candidate)) {
          out.script = std::move(candidate);
          progress = true;
          break;
        }
      }
    }
    if (window == 1) break;
  }

  // Documents: canonicalize filter indices, then drop unreferenced
  // documents (a no-op for replay semantics — no probe needed).
  if (!out.script.documents.empty()) {
    const uint32_t num_docs =
        static_cast<uint32_t>(out.script.documents.size());
    std::vector<bool> used(num_docs, false);
    for (ChurnOp& op : out.script.ops) {
      if (op.kind == ChurnOp::Kind::kFilter) {
        op.doc %= num_docs;
        used[op.doc] = true;
      }
    }
    for (uint32_t d = num_docs; d-- > 0;) {
      if (used[d]) continue;
      out.script.documents.erase(out.script.documents.begin() + d);
      for (ChurnOp& op : out.script.ops) {
        if (op.kind == ChurnOp::Kind::kFilter && op.doc > d) --op.doc;
      }
    }
  }
  return out;
}

ChurnHarness::ChurnHarness(Options options) : options_(std::move(options)) {
  options_.partitions = std::max<size_t>(options_.partitions, 1);
  options_.filter_threads = std::max<size_t>(options_.filter_threads, 1);
  options_.documents = std::max<size_t>(options_.documents, 1);
  options_.batch_size = std::max<size_t>(options_.batch_size, 1);
  options_.publish_every = std::max<size_t>(options_.publish_every, 1);
}

Result<ChurnHarness::Report> ChurnHarness::Run() {
  const xml::Dtd& dtd = DtdByName(options_.dtd);
  Random rng(options_.seed);

  // Seeded workload: documents, plus one expression pool shared by
  // the initial load and the mutation thread (pre-generated so the
  // thread itself never touches the non-thread-safe generators).
  xml::DocumentGenerator::Options doc_options;
  doc_options.max_depth = options_.doc_max_depth;
  xml::DocumentGenerator doc_gen(&dtd, doc_options);
  std::vector<xml::Document> docs;
  docs.reserve(options_.documents);
  for (size_t i = 0; i < options_.documents; ++i) {
    docs.push_back(doc_gen.Generate(rng.Next()));
  }

  xpath::QueryGenerator::Options query_options;
  query_options.max_length = 5;
  query_options.filters_per_expr = 1;
  query_options.nested_path_prob = 0.1;
  xpath::QueryGenerator query_gen(&dtd, query_options);
  const size_t pool_size =
      options_.initial_subscriptions + options_.mutation_ops + 1;
  std::vector<std::string> pool =
      query_gen.GenerateWorkloadStrings(pool_size, rng.Next());
  if (pool.empty()) {
    return Status::Internal("query generator produced no expressions");
  }

  core::IndexEpochManager::Options mgr_options;
  mgr_options.partitions = options_.partitions;
  mgr_options.matcher = options_.matcher;
  mgr_options.record_history = true;
  core::IndexEpochManager manager(mgr_options);

  std::vector<core::ExprId> initial_live;
  for (size_t i = 0; i < options_.initial_subscriptions; ++i) {
    Result<core::ExprId> sid =
        manager.Subscribe(pool[i % pool.size()]);
    if (sid.ok()) initial_live.push_back(*sid);
  }
  Result<uint64_t> first_epoch = manager.Publish();
  if (!first_epoch.ok()) return first_epoch.status();

  // --- The interleaving ---------------------------------------------
  struct BatchRecord {
    uint64_t epoch = 0;
    std::vector<uint32_t> docs;
    std::vector<Status> statuses;
    std::vector<std::vector<core::ExprId>> matched;
  };
  std::vector<std::vector<BatchRecord>> per_thread_records(
      options_.filter_threads);

  Report report;
  uint64_t writer_rejected = 0;
  uint64_t writer_max_live = initial_live.size();

  // Overlap control: the writer holds off until every filter thread
  // is constructed, and filter threads pace their batches across the
  // expected epoch timeline (waiting for epoch progress, never for a
  // fixed time) — otherwise fast filter threads drain all their
  // batches against the initial epoch and the "concurrent" run
  // degenerates into a sequential one.
  std::atomic<size_t> filters_ready{0};
  std::atomic<bool> mutation_done{false};
  const uint64_t base_epoch = *first_epoch;
  const uint64_t expected_epochs =
      options_.publish_every > 0
          ? options_.mutation_ops / options_.publish_every
          : 0;

  std::thread mutation_thread([&] {
    while (filters_ready.load(std::memory_order_acquire) <
           options_.filter_threads) {
      std::this_thread::yield();
    }
    Random wrng(options_.seed ^ 0xc2b2ae3d27d4eb4full);
    std::vector<core::ExprId> live = initial_live;
    size_t next_pool = options_.initial_subscriptions;
    size_t since_publish = 0;
    for (size_t i = 0; i < options_.mutation_ops; ++i) {
      const bool do_subscribe =
          live.size() < 2 || wrng.Bernoulli(0.55);
      if (do_subscribe) {
        Result<core::ExprId> sid =
            manager.Subscribe(pool[next_pool % pool.size()]);
        ++next_pool;
        if (sid.ok()) live.push_back(*sid);
      } else {
        const size_t idx = wrng.Uniform(live.size());
        if (manager.Unsubscribe(live[idx]).ok()) {
          live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
        }
      }
      writer_max_live = std::max<uint64_t>(writer_max_live, live.size());
      if (++since_publish >= options_.publish_every) {
        since_publish = 0;
        if (options_.non_blocking_publish) {
          Result<uint64_t> epoch = manager.TryPublish();
          if (!epoch.ok()) ++writer_rejected;
        } else {
          (void)manager.Publish();
        }
      }
    }
    // Always land the tail of the mutation log.
    (void)manager.Publish();
    mutation_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> filter_threads;
  filter_threads.reserve(options_.filter_threads);
  for (size_t tid = 0; tid < options_.filter_threads; ++tid) {
    filter_threads.emplace_back([&, tid] {
      Random frng(options_.seed ^ (0x9e3779b97f4a7c15ull * (tid + 1)));
      exec::ParallelFilter::Options pf_options;
      pf_options.threads = options_.workers_per_filter;
      pf_options.seed = frng.Next();
      exec::ParallelFilter filter(pf_options, &manager);
      std::vector<BatchRecord>& records = per_thread_records[tid];
      records.reserve(options_.batches_per_thread);
      std::vector<exec::DocRef> refs(options_.batch_size);
      filters_ready.fetch_add(1, std::memory_order_acq_rel);
      for (size_t b = 0; b < options_.batches_per_thread; ++b) {
        // Pace this batch to its slot on the epoch timeline so the
        // run pins a spread of epochs instead of racing ahead of the
        // writer. Gives up as soon as the writer is done.
        const uint64_t target =
            base_epoch + (expected_epochs * b) / options_.batches_per_thread;
        while (manager.current_epoch() < target &&
               !mutation_done.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        BatchRecord record;
        record.docs.reserve(options_.batch_size);
        for (size_t k = 0; k < options_.batch_size; ++k) {
          const uint32_t d =
              static_cast<uint32_t>(frng.Uniform(docs.size()));
          record.docs.push_back(d);
          refs[k].doc = &docs[d];
        }
        exec::CollectingResultSink sink;
        (void)filter.FilterBatch(
            std::span<const exec::DocRef>(refs.data(), refs.size()), sink);
        record.epoch = filter.last_batch_epoch();
        for (const exec::CollectingResultSink::DocResult& r :
             sink.results()) {
          record.statuses.push_back(r.status);
          record.matched.push_back(r.matched);
        }
        records.push_back(std::move(record));
      }
    });
  }

  mutation_thread.join();
  for (std::thread& t : filter_threads) t.join();

  // --- The oracle ----------------------------------------------------
  // Every batch is checked against a from-scratch rebuild at exactly
  // the epoch it pinned. Oracles and per-(epoch, document) match sets
  // are cached — correctness needs one comparison per observation,
  // not one rebuild.
  std::map<uint64_t, std::unique_ptr<core::Matcher>> oracles;
  std::map<std::pair<uint64_t, uint32_t>, std::vector<core::ExprId>>
      oracle_matches;

  const core::IndexEpochManager::Stats stats = manager.stats();
  report.epochs_published = stats.publishes;
  report.subscribes = stats.subscribes;
  report.unsubscribes = stats.unsubscribes;
  report.publish_rejected = writer_rejected;
  report.max_live_subscriptions = writer_max_live;

  std::set<uint64_t> epochs_pinned;
  for (size_t tid = 0; tid < per_thread_records.size(); ++tid) {
    for (size_t b = 0; b < per_thread_records[tid].size(); ++b) {
      const BatchRecord& record = per_thread_records[tid][b];
      ++report.batches;
      epochs_pinned.insert(record.epoch);
      bool batch_failed = false;
      for (size_t k = 0; k < record.docs.size(); ++k) {
        ++report.documents_filtered;
        if (!record.statuses[k].ok()) {
          batch_failed = true;
          ++report.mismatches;
          if (report.divergences.size() < options_.max_divergences) {
            report.divergences.push_back(
                "thread " + std::to_string(tid) + " batch " +
                std::to_string(b) + " doc " +
                std::to_string(record.docs[k]) + " failed: " +
                record.statuses[k].ToString());
          }
          continue;
        }
        auto oracle_it = oracles.find(record.epoch);
        if (oracle_it == oracles.end()) {
          Result<std::unique_ptr<core::Matcher>> oracle =
              BuildOracleAtEpoch(manager, record.epoch, options_.matcher);
          if (!oracle.ok()) return oracle.status();
          oracle_it =
              oracles.emplace(record.epoch, std::move(*oracle)).first;
        }
        const std::pair<uint64_t, uint32_t> key(record.epoch,
                                                record.docs[k]);
        auto match_it = oracle_matches.find(key);
        if (match_it == oracle_matches.end()) {
          std::vector<core::ExprId> expected;
          XPRED_RETURN_NOT_OK(oracle_it->second->FilterDocument(
              docs[record.docs[k]], &expected));
          std::sort(expected.begin(), expected.end());
          match_it = oracle_matches.emplace(key, std::move(expected)).first;
        }
        ++report.oracle_checks;
        if (record.matched[k] != match_it->second) {
          ++report.mismatches;
          if (report.divergences.size() < options_.max_divergences) {
            ChurnDivergence div;
            div.op_index = b;
            div.epoch = record.epoch;
            div.doc = record.docs[k];
            div.engine = record.matched[k];
            div.oracle = match_it->second;
            report.divergences.push_back("thread " + std::to_string(tid) +
                                         ": " + div.ToString());
          }
        }
      }
      if (batch_failed) ++report.batch_errors;
    }
  }
  report.distinct_epochs_pinned = epochs_pinned.size();
  return report;
}

}  // namespace xpred::difftest
