#ifndef XPRED_TESTING_DIFFERENTIAL_HARNESS_H_
#define XPRED_TESTING_DIFFERENTIAL_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "testing/corpus_store.h"
#include "testing/engine_roster.h"
#include "xml/document.h"

namespace xpred::difftest {

/// \brief Generative differential tester for every filtering engine.
///
/// Each run draws a DTD-guided expression workload and documents
/// (randomized generator knobs per run), applies grammar-aware
/// mutations (WorkloadMutator), optionally interleaves decoy
/// subscription add/remove cycles on removal-capable engines, and
/// checks every engine's verdicts against the brute-force
/// xpath::Evaluator oracle. Any divergence — a wrong verdict, a
/// Status error on an input other engines and the oracle handle, or an
/// AddExpression rejection of a parseable expression — is
/// delta-debugged down to a minimal repro (CaseMinimizer) and recorded
/// as a self-contained .xpredcase (CorpusStore).
///
/// Everything is deterministic in Options::seed: two sessions with the
/// same options produce byte-identical JSON summaries (the JSON
/// contains no timestamps; a --time-budget cutoff is the one
/// deliberate exception, since it depends on wall time).
class DifferentialHarness {
 public:
  struct Options {
    uint64_t seed = 1;
    uint64_t runs = 100;
    /// Stop starting new runs after this many seconds (0 = no budget).
    double time_budget_seconds = 0;
    /// Roster label prefixes to test (empty = full roster).
    std::vector<std::string> engines;
    /// "nitf", "psd", or "both" (alternating per run).
    std::string dtd = "both";
    uint32_t exprs_per_run = 12;
    uint32_t docs_per_run = 2;
    uint32_t doc_max_depth = 8;
    /// Per-expression / per-document mutation probability.
    double mutation_prob = 0.35;
    /// Exercise decoy subscription add/remove interleavings on engines
    /// that support removal (Matcher and the streaming front end).
    bool exercise_removal = true;
    bool minimize = true;
    /// Chaos-mode escape hatch: when set, a document on which EVERY
    /// engine fails with the SAME StatusCode is not a divergence —
    /// uniform failure is exactly the governance contract under fault
    /// injection or resource limits. Mixed outcomes (one engine fails
    /// while another succeeds, or differing codes) are still recorded.
    bool tolerate_uniform_errors = false;
    /// Hard cap on minimized repro cases per session; further
    /// mismatches are still counted.
    size_t max_cases = 20;
    /// When non-empty, minimized cases are written here as .xpredcase
    /// files.
    std::string corpus_dir;
  };

  /// One recorded engine/oracle divergence, after minimization (when
  /// enabled).
  struct CaseRecord {
    uint64_t run = 0;
    std::string engine;
    std::string dtd;
    /// "verdict" (wrong match decision), "status" (FilterDocument
    /// error), or "acceptance" (AddExpression rejected a parseable
    /// expression).
    std::string kind;
    Case repro;            ///< Self-contained repro (post-minimization).
    size_t document_nodes = 0;
    size_t probes = 0;     ///< Minimizer probe count (0 = not minimized).
    bool minimized = false;
    bool converged = true;
    std::string file;      ///< Corpus path when written, else "".
  };

  struct Summary {
    uint64_t seed = 0;
    uint64_t runs_requested = 0;
    uint64_t runs_executed = 0;
    std::vector<std::string> engines;
    uint64_t documents = 0;
    uint64_t expressions = 0;
    uint64_t verdicts = 0;
    uint64_t expr_mutations = 0;
    uint64_t doc_mutations = 0;
    uint64_t removal_interleavings = 0;
    /// Expressions rejected by every engine (excluded from checking).
    uint64_t rejected_expressions = 0;
    /// Total divergences observed (>= cases.size(); identical repros
    /// dedupe and max_cases caps the list).
    uint64_t mismatches = 0;
    std::vector<CaseRecord> cases;
    bool time_budget_exhausted = false;

    /// Deterministic JSON rendering (stable key order, no wall times).
    std::string ToJson() const;
  };

  explicit DifferentialHarness(Options options);
  /// Test-only: replaces the engine roster (e.g. to inject a broken
  /// engine and prove the harness catches it).
  DifferentialHarness(Options options, std::vector<RosterEntry> roster);

  /// Runs the configured fuzzing session. Fails only on configuration
  /// errors (unknown engine/dtd); engine divergences are reported in
  /// the summary, not as a Status.
  Result<Summary> Run();

  /// Re-checks one stored case against an engine roster entry:
  /// returns the engine's outcome on the case's document/expressions.
  static EngineOutcome ReplayCase(const RosterEntry& entry, const Case& c);

 private:
  struct RunContext;

  void RunOne(uint64_t run, Summary* summary);
  void RecordDivergence(RunContext* ctx, const RosterEntry& entry,
                        const std::string& kind, const xml::Document& doc,
                        const std::vector<std::string>& exprs,
                        Summary* summary);

  Options options_;
  std::vector<RosterEntry> roster_;
  bool roster_overridden_ = false;
  /// Serialized repros already recorded (dedup across runs).
  std::vector<std::string> seen_cases_;
};

}  // namespace xpred::difftest

#endif  // XPRED_TESTING_DIFFERENTIAL_HARNESS_H_
