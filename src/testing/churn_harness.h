#ifndef XPRED_TESTING_CHURN_HARNESS_H_
#define XPRED_TESTING_CHURN_HARNESS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/matcher.h"

namespace xpred::difftest {

/// \brief One step of a churn script — a deterministic, serializable
/// interleaving of subscription mutations and filtering.
///
/// Operands are defined so that *any subsequence of any script is
/// still a valid script*: an unsubscribe picks its victim as an index
/// into the currently live subscription list (modulo its size, no-op
/// when empty) rather than naming a subscription id, and a filter op
/// picks its document modulo the document count. That closure property
/// is what lets the minimizer shrink a failing mutation sequence by
/// plain op deletion.
struct ChurnOp {
  enum class Kind : uint8_t { kSubscribe, kUnsubscribe, kPublish, kFilter };
  Kind kind = Kind::kSubscribe;
  /// kSubscribe: the expression to subscribe.
  std::string xpath;
  /// kUnsubscribe: victim = live[pick % live.size()].
  uint32_t pick = 0;
  /// kFilter: document = documents[doc % documents.size()].
  uint32_t doc = 0;
};

/// \brief A self-contained churn workload: documents plus an op
/// sequence. Replayable deterministically by ReplayChurnScript.
struct ChurnScript {
  uint64_t seed = 0;
  std::string dtd;  ///< "nitf", "psd", or "" (informational).
  std::vector<std::string> documents;  ///< XML text.
  std::vector<ChurnOp> ops;
};

/// Script text format, one op per line (the `== script` section of a
/// churn .xpredcase):
///   sub <xpath>
///   unsub <pick>
///   publish
///   filter <doc>
std::vector<std::string> SerializeChurnOps(std::span<const ChurnOp> ops);
Result<std::vector<ChurnOp>> ParseChurnOps(
    std::span<const std::string> lines);

/// \brief A filter op whose live-engine match set disagreed with the
/// rebuild-from-scratch oracle at the batch's pinned epoch.
struct ChurnDivergence {
  size_t op_index = 0;   ///< Index of the filter op in the script.
  uint64_t epoch = 0;    ///< Epoch the batch pinned.
  uint32_t doc = 0;      ///< Resolved document index.
  std::vector<core::ExprId> engine;  ///< Sorted global sids.
  std::vector<core::ExprId> oracle;  ///< Sorted global sids.
  std::string ToString() const;
};

struct ChurnReplayOptions {
  size_t partitions = 2;
  /// Worker threads of the (single) live ParallelFilter. Replay is
  /// serial either way — one op at a time — so 1 keeps it inline.
  size_t threads = 1;
  core::Matcher::Options matcher;
};

struct ChurnReplayResult {
  uint64_t epochs_published = 0;
  uint64_t subscribes = 0;
  uint64_t rejected_subscribes = 0;  ///< Parse/capacity rejections.
  uint64_t unsubscribes = 0;
  uint64_t filters = 0;
  /// Sorted global sids matched by each filter op, in op order.
  std::vector<std::vector<core::ExprId>> filter_results;
  /// The oracle's sorted match set per filter op (rebuilt from the op
  /// log at the op's pinned epoch) — the ground truth, and the
  /// expected-matches lines of a saved churn .xpredcase. Equal to
  /// filter_results exactly when there is no divergence.
  std::vector<std::vector<core::ExprId>> oracle_results;
  /// First engine/oracle disagreement, if any.
  std::optional<ChurnDivergence> divergence;
};

/// Replays \p script one op at a time against a live
/// exec::ParallelFilter over a core::IndexEpochManager, checking every
/// filter op's match set against a fresh single-threaded core::Matcher
/// rebuilt from the manager's op log at the batch's pinned epoch.
/// Deterministic: same script + options => same result. Returns a
/// Status only for malformed inputs (unparseable document, filter op
/// with no documents) — divergences are data, not errors.
Result<ChurnReplayResult> ReplayChurnScript(const ChurnScript& script,
                                            const ChurnReplayOptions& options);

/// \brief Seeded random churn-script generation (fuzzer + tests).
struct ChurnScriptOptions {
  uint64_t seed = 1;
  std::string dtd = "nitf";  ///< "nitf" or "psd".
  uint32_t documents = 1;
  uint32_t doc_max_depth = 7;
  uint32_t ops = 40;
  /// Distinct expressions drawn up front; subscribe ops sample from
  /// this pool (duplicates across subscribes are deliberate — they
  /// exercise the dedup/reactivation paths).
  uint32_t query_pool = 12;
  /// Per-pool-expression grammar-mutation probability
  /// (WorkloadMutator; mutants still parse).
  double mutation_prob = 0.35;
  double subscribe_prob = 0.40;
  double unsubscribe_prob = 0.20;
  double publish_prob = 0.15;  ///< Remainder: filter ops.
};
ChurnScript GenerateChurnScript(const ChurnScriptOptions& options);

/// \brief Delta-debugs a diverging script to a locally minimal one:
/// greedy chunked op deletion (halving window sizes), then dropping
/// documents no remaining filter op references. The result still
/// diverges under \p options.
struct ChurnMinimizeResult {
  ChurnScript script;
  size_t probes = 0;      ///< Replay attempts spent.
  bool converged = true;  ///< False when the probe budget ran out.
};
ChurnMinimizeResult MinimizeChurnScript(const ChurnScript& script,
                                        const ChurnReplayOptions& options,
                                        size_t max_probes = 2000);

/// \brief The tentpole's proof harness: N filter threads running live
/// batches against one mutation thread, every batch checked after the
/// run against a rebuild-from-scratch oracle at its pinned epoch.
///
/// Determinism: thread *schedules* vary run to run (that is the
/// point — TSan needs real interleavings), but the checked property
/// is schedule-independent: whatever epoch a batch pinned, its match
/// set must equal the oracle's at exactly that epoch. Workloads
/// (documents, expressions, mutation choices) are seeded.
class ChurnHarness {
 public:
  struct Options {
    uint64_t seed = 1;
    std::string dtd = "nitf";
    size_t partitions = 2;
    /// Concurrent filter threads, each with its own live
    /// exec::ParallelFilter over the shared manager.
    size_t filter_threads = 2;
    /// Worker threads inside each filter (1 = inline filtering).
    size_t workers_per_filter = 1;
    size_t documents = 4;
    uint32_t doc_max_depth = 7;
    /// Subscriptions loaded (and published) before the run starts.
    size_t initial_subscriptions = 24;
    /// Mutation-thread operations (subscribe/unsubscribe mix).
    size_t mutation_ops = 120;
    /// Publish after this many mutations (1 = publish every op — the
    /// epoch-retire stress configuration).
    size_t publish_every = 5;
    size_t batches_per_thread = 20;
    size_t batch_size = 3;
    /// Use TryPublish instead of Publish: the writer never blocks on
    /// a pinned side, maximizing swap/retire races.
    bool non_blocking_publish = false;
    core::Matcher::Options matcher;
    /// Cap on recorded divergence descriptions.
    size_t max_divergences = 8;
  };

  struct Report {
    uint64_t epochs_published = 0;
    uint64_t subscribes = 0;
    uint64_t unsubscribes = 0;
    uint64_t publish_rejected = 0;  ///< TryPublish refusals.
    uint64_t batches = 0;
    uint64_t documents_filtered = 0;
    uint64_t batch_errors = 0;   ///< Batches with a non-OK status.
    uint64_t oracle_checks = 0;  ///< (epoch, document) comparisons.
    uint64_t mismatches = 0;
    uint64_t distinct_epochs_pinned = 0;
    uint64_t max_live_subscriptions = 0;
    std::vector<std::string> divergences;
  };

  explicit ChurnHarness(Options options);

  /// Builds the seeded workload, runs the interleaving, then verifies
  /// every batch against the oracle. A Status error means the harness
  /// itself failed (setup error); divergences land in the Report.
  Result<Report> Run();

 private:
  Options options_;
};

}  // namespace xpred::difftest

#endif  // XPRED_TESTING_CHURN_HARNESS_H_
