#include "testing/case_minimizer.h"

#include "testing/workload_mutator.h"
#include "xpath/ast.h"
#include "xpath/parser.h"

namespace xpred::difftest {

namespace {

/// Shared probe state: counts predicate evaluations and enforces the
/// budget (an exhausted budget makes every further probe "not
/// failing", freezing the current reduction).
struct ProbeState {
  const CaseMinimizer::Predicate* fails;
  size_t probes = 0;
  size_t max_probes;
  bool exhausted = false;

  bool Probe(const xml::Document& doc, const std::vector<std::string>& exprs) {
    if (probes >= max_probes) {
      exhausted = true;
      return false;
    }
    ++probes;
    return (*fails)(doc, exprs);
  }
};

/// One sweep of document edits; true when anything shrank.
bool ShrinkDocumentOnce(xml::Document* doc, const std::vector<std::string>& exprs,
                        ProbeState* state) {
  bool progress = false;

  // Root promotion: replace the document by a failing child subtree.
  for (bool promoted = true; promoted && doc->size() > 1;) {
    promoted = false;
    for (xml::NodeId child : doc->element(doc->root()).children) {
      xml::Document candidate = ExtractSubtree(*doc, child);
      if (state->Probe(candidate, exprs)) {
        *doc = std::move(candidate);
        progress = promoted = true;
        break;
      }
    }
  }

  // Subtree deletion, deepest ids first: deleting node i only shifts
  // ids > i, so a single descending sweep tries every original node.
  for (xml::NodeId id = static_cast<xml::NodeId>(doc->size()); id-- > 1;) {
    if (id >= doc->size()) continue;
    xml::Document candidate = CopyDocument(*doc, id);
    if (state->Probe(candidate, exprs)) {
      *doc = std::move(candidate);
      progress = true;
    }
  }

  // Attribute stripping.
  for (xml::NodeId id = 0; id < doc->size(); ++id) {
    for (size_t a = doc->element(id).attributes.size(); a-- > 0;) {
      xml::Document candidate = CopyDocument(*doc);
      candidate.element(id).attributes.erase(
          candidate.element(id).attributes.begin() + a);
      if (state->Probe(candidate, exprs)) {
        *doc = std::move(candidate);
        progress = true;
      }
    }
  }

  // Text stripping (all at once; text never affects path matching but
  // keeps repro files noisy).
  bool has_text = false;
  for (xml::NodeId id = 0; id < doc->size(); ++id) {
    if (!doc->element(id).text.empty()) has_text = true;
  }
  if (has_text) {
    xml::Document candidate = CopyDocument(*doc);
    for (xml::NodeId id = 0; id < candidate.size(); ++id) {
      candidate.element(id).text.clear();
    }
    if (state->Probe(candidate, exprs)) {
      *doc = std::move(candidate);
      progress = true;
    }
  }
  return progress;
}

/// One sweep of expression-set edits; true when the set shrank.
bool ShrinkExpressionSetOnce(const xml::Document& doc,
                             std::vector<std::string>* exprs,
                             ProbeState* state) {
  if (exprs->size() <= 1) return false;
  // Fast path: a single expression usually carries the failure.
  for (const std::string& expr : *exprs) {
    std::vector<std::string> candidate = {expr};
    if (state->Probe(doc, candidate)) {
      *exprs = std::move(candidate);
      return true;
    }
  }
  // Otherwise drop expressions one at a time.
  bool progress = false;
  for (size_t i = exprs->size(); i-- > 0 && exprs->size() > 1;) {
    std::vector<std::string> candidate = *exprs;
    candidate.erase(candidate.begin() + i);
    if (state->Probe(doc, candidate)) {
      *exprs = std::move(candidate);
      progress = true;
    }
  }
  return progress;
}

/// Candidate simplifications of one expression, coarsest first.
std::vector<std::string> ExpressionEdits(const std::string& text) {
  std::vector<std::string> edits;
  Result<xpath::PathExpr> parsed = xpath::ParseXPath(text);
  if (!parsed.ok()) return edits;
  const xpath::PathExpr& expr = *parsed;

  auto emit = [&edits, &text](const xpath::PathExpr& candidate) {
    std::string s = candidate.ToString();
    // Only offer genuine, still-parseable simplifications.
    if (s != text && xpath::ParseXPath(s).ok()) edits.push_back(std::move(s));
  };

  for (size_t i = 0; i < expr.steps.size() && expr.steps.size() > 1; ++i) {
    xpath::PathExpr candidate = expr;
    candidate.steps.erase(candidate.steps.begin() + i);
    emit(candidate);
  }
  for (size_t i = 0; i < expr.steps.size(); ++i) {
    for (size_t f = 0; f < expr.steps[i].nested_paths.size(); ++f) {
      xpath::PathExpr candidate = expr;
      candidate.steps[i].nested_paths.erase(
          candidate.steps[i].nested_paths.begin() + f);
      emit(candidate);
    }
    for (size_t f = 0; f < expr.steps[i].attribute_filters.size(); ++f) {
      xpath::PathExpr candidate = expr;
      candidate.steps[i].attribute_filters.erase(
          candidate.steps[i].attribute_filters.begin() + f);
      emit(candidate);
    }
    if (expr.steps[i].axis == xpath::Axis::kDescendant) {
      xpath::PathExpr candidate = expr;
      candidate.steps[i].axis = xpath::Axis::kChild;
      emit(candidate);
    }
  }
  return edits;
}

/// One sweep of per-expression simplifications.
bool ShrinkExpressionsOnce(const xml::Document& doc,
                           std::vector<std::string>* exprs,
                           ProbeState* state) {
  bool progress = false;
  for (size_t i = 0; i < exprs->size(); ++i) {
    bool edited = true;
    while (edited) {
      edited = false;
      for (const std::string& edit : ExpressionEdits((*exprs)[i])) {
        std::vector<std::string> candidate = *exprs;
        candidate[i] = edit;
        if (state->Probe(doc, candidate)) {
          *exprs = std::move(candidate);
          progress = edited = true;
          break;
        }
      }
    }
  }
  return progress;
}

}  // namespace

CaseMinimizer::Output CaseMinimizer::Minimize(
    const xml::Document& doc, const std::vector<std::string>& exprs,
    const Predicate& fails, Options options) {
  xml::Document current = CopyDocument(doc);
  std::vector<std::string> current_exprs = exprs;
  ProbeState state{&fails, 0, options.max_probes, false};

  bool progress = true;
  while (progress && !state.exhausted) {
    progress = false;
    if (ShrinkDocumentOnce(&current, current_exprs, &state)) progress = true;
    if (ShrinkExpressionSetOnce(current, &current_exprs, &state)) {
      progress = true;
    }
    if (ShrinkExpressionsOnce(current, &current_exprs, &state)) {
      progress = true;
    }
  }

  Output out;
  out.document_xml = current.ToXml();
  out.expressions = std::move(current_exprs);
  out.document_nodes = current.size();
  out.probes = state.probes;
  out.converged = !state.exhausted;
  return out;
}

}  // namespace xpred::difftest
