#ifndef XPRED_TESTING_CASE_MINIMIZER_H_
#define XPRED_TESTING_CASE_MINIMIZER_H_

#include <functional>
#include <string>
#include <vector>

#include "xml/document.h"

namespace xpred::difftest {

/// \brief Delta-debugging minimizer for differential-testing failures.
///
/// Given a failing (document, expression set) pair and a predicate
/// that re-checks the failure, greedily shrinks — in order — the
/// document (subtree deletion, root promotion, attribute and text
/// stripping), then the expression set (down to a single expression
/// when possible), then each surviving expression (step / filter /
/// nested-path deletion), re-validating the failure after every
/// candidate edit. The passes repeat until a fixpoint, so document
/// reductions enabled by a smaller expression set are found too.
class CaseMinimizer {
 public:
  /// Re-runs the failure check on a candidate. Must be deterministic
  /// and side-effect free (the minimizer probes it many times);
  /// typically it builds a fresh engine, adds \p exprs, filters
  /// \p doc, and compares against the oracle.
  using Predicate = std::function<bool(
      const xml::Document& doc, const std::vector<std::string>& exprs)>;

  struct Options {
    /// Upper bound on predicate evaluations; when exhausted, the best
    /// reduction found so far is returned with converged = false.
    size_t max_probes = 4000;
  };

  struct Output {
    std::string document_xml;
    std::vector<std::string> expressions;
    size_t document_nodes = 0;
    size_t probes = 0;
    bool converged = true;
  };

  /// Minimizes a failing case. \p fails(doc, exprs) must be true on
  /// entry; the returned case also satisfies it.
  static Output Minimize(const xml::Document& doc,
                         const std::vector<std::string>& exprs,
                         const Predicate& fails, Options options);
  static Output Minimize(const xml::Document& doc,
                         const std::vector<std::string>& exprs,
                         const Predicate& fails) {
    return Minimize(doc, exprs, fails, Options());
  }
};

}  // namespace xpred::difftest

#endif  // XPRED_TESTING_CASE_MINIMIZER_H_
