// Differential fuzzing CLI: cross-checks every filtering engine
// against the brute-force XPath oracle on generated-and-mutated
// workloads, delta-debugs any divergence to a minimal repro, and
// emits a deterministic JSON summary (same seed => byte-identical
// output; CI and humans consume the same artifact).
//
//   xpred_fuzz [--runs N] [--seed S] [--time-budget SECONDS]
//       [--engine NAME[,NAME...]] [--dtd nitf|psd|both]
//       [--exprs-per-run N] [--docs-per-run N] [--max-depth D]
//       [--corpus-dir PATH] [--max-cases N] [--json PATH|-]
//       [--no-minimize] [--no-mutate] [--no-removal] [--quiet]
//
// Flags accept both `--key value` and `--key=value`. --engine matches
// roster-label prefixes ("matcher" selects all eight matcher
// configurations; "matcher-pc-ap-inline" exactly one). The JSON
// summary goes to stdout by default; a human-readable digest goes to
// stderr unless --quiet.
//
// Exit code: 0 = all engines agree with the oracle, 1 = divergence
// found (see the JSON `cases` array), 2 = usage/configuration error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "testing/differential_harness.h"

namespace {

using namespace xpred;  // NOLINT: tool brevity.

int Usage() {
  std::fprintf(
      stderr,
      "usage: xpred_fuzz [--runs N] [--seed S] [--time-budget SECONDS]\n"
      "    [--engine NAME[,NAME...]] [--dtd nitf|psd|both]\n"
      "    [--exprs-per-run N] [--docs-per-run N] [--max-depth D]\n"
      "    [--corpus-dir PATH] [--max-cases N] [--json PATH|-]\n"
      "    [--no-minimize] [--no-mutate] [--no-removal] [--quiet]\n");
  return 2;
}

/// --key=value / --key value / bare --switch flag parser.
struct Flags {
  std::map<std::string, std::string> values;

  static bool IsSwitch(const std::string& key) {
    return key == "no-minimize" || key == "no-mutate" ||
           key == "no-removal" || key == "quiet" || key == "help";
  }

  static bool Parse(int argc, char** argv, Flags* out) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
        return false;
      }
      std::string key = arg.substr(2);
      size_t eq = key.find('=');
      if (eq != std::string::npos) {
        out->values[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (IsSwitch(key)) {
        out->values[key] = "true";
      } else if (i + 1 < argc) {
        out->values[key] = argv[++i];
      } else {
        std::fprintf(stderr, "option '--%s' needs a value\n", key.c_str());
        return false;
      }
    }
    return true;
  }

  bool Has(const std::string& key) const { return values.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : it->second;
  }
  long GetInt(const std::string& key, long dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : std::atol(it->second.c_str());
  }
  double GetDouble(const std::string& key, double dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : std::atof(it->second.c_str());
  }
};

const char* const kKnownFlags[] = {
    "runs",       "seed",         "time-budget", "engine",
    "dtd",        "exprs-per-run", "docs-per-run", "max-depth",
    "corpus-dir", "max-cases",    "json",        "no-minimize",
    "no-mutate",  "no-removal",   "quiet",       "help",
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!Flags::Parse(argc, argv, &flags)) return Usage();
  if (flags.Has("help")) return Usage();
  for (const auto& [key, value] : flags.values) {
    bool known = false;
    for (const char* k : kKnownFlags) {
      if (key == k) known = true;
    }
    if (!known) {
      std::fprintf(stderr, "unknown option '--%s'\n", key.c_str());
      return Usage();
    }
  }

  difftest::DifferentialHarness::Options options;
  options.runs = static_cast<uint64_t>(flags.GetInt("runs", 100));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  options.time_budget_seconds = flags.GetDouble("time-budget", 0);
  options.dtd = flags.Get("dtd", "both");
  options.exprs_per_run =
      static_cast<uint32_t>(flags.GetInt("exprs-per-run", 12));
  options.docs_per_run =
      static_cast<uint32_t>(flags.GetInt("docs-per-run", 2));
  options.doc_max_depth = static_cast<uint32_t>(flags.GetInt("max-depth", 8));
  options.corpus_dir = flags.Get("corpus-dir", "");
  options.max_cases = static_cast<size_t>(flags.GetInt("max-cases", 20));
  options.minimize = !flags.Has("no-minimize");
  if (flags.Has("no-mutate")) options.mutation_prob = 0;
  options.exercise_removal = !flags.Has("no-removal");
  if (flags.Has("engine")) {
    std::string engine_list = flags.Get("engine", "");
    for (std::string_view piece : Split(engine_list, ',')) {
      if (!piece.empty()) options.engines.emplace_back(piece);
    }
  }

  Result<difftest::DifferentialHarness::Summary> summary =
      difftest::DifferentialHarness(options).Run();
  if (!summary.ok()) {
    std::fprintf(stderr, "xpred_fuzz: %s\n",
                 summary.status().ToString().c_str());
    return 2;
  }

  std::string json = summary->ToJson();
  std::string json_path = flags.Get("json", "-");
  if (json_path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
  } else {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "xpred_fuzz: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << json;
  }

  if (!flags.Has("quiet")) {
    std::fprintf(stderr,
                 "xpred_fuzz: %llu/%llu runs, %llu documents, %llu verdicts "
                 "across %zu engines, %llu mismatches%s\n",
                 static_cast<unsigned long long>(summary->runs_executed),
                 static_cast<unsigned long long>(summary->runs_requested),
                 static_cast<unsigned long long>(summary->documents),
                 static_cast<unsigned long long>(summary->verdicts),
                 summary->engines.size(),
                 static_cast<unsigned long long>(summary->mismatches),
                 summary->time_budget_exhausted ? " (time budget hit)" : "");
    for (const auto& record : summary->cases) {
      std::string where =
          record.file.empty() ? std::string() : (" -> " + record.file);
      std::fprintf(stderr,
                   "  case: engine=%s kind=%s run=%llu nodes=%zu exprs=%zu%s\n",
                   record.engine.c_str(), record.kind.c_str(),
                   static_cast<unsigned long long>(record.run),
                   record.document_nodes, record.repro.expressions.size(),
                   where.c_str());
    }
  }
  return summary->mismatches == 0 ? 0 : 1;
}
