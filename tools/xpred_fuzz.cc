// Differential fuzzing CLI: cross-checks every filtering engine
// against the brute-force XPath oracle on generated-and-mutated
// workloads, delta-debugs any divergence to a minimal repro, and
// emits a deterministic JSON summary (same seed => byte-identical
// output; CI and humans consume the same artifact).
//
//   xpred_fuzz [--runs N] [--seed S] [--time-budget SECONDS]
//       [--engine NAME[,NAME...]] [--dtd nitf|psd|both]
//       [--exprs-per-run N] [--docs-per-run N] [--max-depth D]
//       [--corpus-dir PATH] [--max-cases N] [--json PATH|-]
//       [--no-minimize] [--no-mutate] [--no-removal] [--quiet]
//   xpred_fuzz --churn [--runs N] [--seed S] [--churn-ops N]
//       [--partitions P] [--dtd nitf|psd|both] [--docs-per-run N]
//       [--max-depth D] [--corpus-dir PATH] [--max-cases N]
//       [--json PATH|-] [--no-minimize] [--no-mutate] [--quiet]
//   xpred_fuzz --recovery [--runs N] [--seed S] [--recovery-ops N]
//       [--fsync never|publish|always] [--crash-points N]
//       [--partitions P] [--dtd nitf|psd|both] [--corpus-dir PATH]
//       [--max-cases N] [--json PATH|-] [--quiet]
//
// Flags accept both `--key value` and `--key=value`. --engine matches
// roster-label prefixes ("matcher" selects all eight matcher
// configurations; "matcher-pc-ap-inline" exactly one). The JSON
// summary goes to stdout by default; a human-readable digest goes to
// stderr unless --quiet.
//
// --churn switches to live-subscription fuzzing: each run generates a
// seeded subscription-churn script (subscribe / unsubscribe / publish
// / filter interleavings over an epoch-snapshot manager, see
// DESIGN.md §15), replays it against the live ParallelFilter, and
// checks every filter op against a rebuild-from-scratch oracle at the
// op's pinned epoch. Divergent scripts are delta-debugged to a
// minimal op sequence and saved as `mode: churn` .xpredcase repros.
//
// --recovery switches to crash/recovery fuzzing (DESIGN.md §16): each
// run generates a seeded durable-store script, enumerates the storage
// fault-site visits with a fault-free baseline, then kills the store
// at up to --crash-points sampled visits per site, recovers, and
// differentials the recovered index against the durable-prefix
// oracle. Divergent crash points are saved as `mode: recovery`
// .xpredcase repros.
//
// Exit code: 0 = all engines agree with the oracle, 1 = divergence
// found (see the JSON `cases` array), 2 = usage/configuration error.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "testing/churn_harness.h"
#include "testing/corpus_store.h"
#include "testing/differential_harness.h"
#include "testing/recovery_harness.h"

namespace {

using namespace xpred;  // NOLINT: tool brevity.

int Usage() {
  std::fprintf(
      stderr,
      "usage: xpred_fuzz [--runs N] [--seed S] [--time-budget SECONDS]\n"
      "    [--engine NAME[,NAME...]] [--dtd nitf|psd|both]\n"
      "    [--exprs-per-run N] [--docs-per-run N] [--max-depth D]\n"
      "    [--corpus-dir PATH] [--max-cases N] [--json PATH|-]\n"
      "    [--no-minimize] [--no-mutate] [--no-removal] [--quiet]\n"
      "   xpred_fuzz --churn [--runs N] [--seed S] [--churn-ops N]\n"
      "    [--partitions P] [--dtd nitf|psd|both] [--docs-per-run N]\n"
      "    [--max-depth D] [--corpus-dir PATH] [--max-cases N]\n"
      "    [--json PATH|-] [--no-minimize] [--no-mutate] [--quiet]\n"
      "   xpred_fuzz --recovery [--runs N] [--seed S] [--recovery-ops N]\n"
      "    [--fsync never|publish|always] [--crash-points N]\n"
      "    [--partitions P] [--dtd nitf|psd|both] [--corpus-dir PATH]\n"
      "    [--max-cases N] [--json PATH|-] [--quiet]\n");
  return 2;
}

/// --key=value / --key value / bare --switch flag parser.
struct Flags {
  std::map<std::string, std::string> values;

  static bool IsSwitch(const std::string& key) {
    return key == "no-minimize" || key == "no-mutate" ||
           key == "no-removal" || key == "quiet" || key == "help" ||
           key == "churn" || key == "recovery";
  }

  static bool Parse(int argc, char** argv, Flags* out) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
        return false;
      }
      std::string key = arg.substr(2);
      size_t eq = key.find('=');
      if (eq != std::string::npos) {
        out->values[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (IsSwitch(key)) {
        out->values[key] = "true";
      } else if (i + 1 < argc) {
        out->values[key] = argv[++i];
      } else {
        std::fprintf(stderr, "option '--%s' needs a value\n", key.c_str());
        return false;
      }
    }
    return true;
  }

  bool Has(const std::string& key) const { return values.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : it->second;
  }
  long GetInt(const std::string& key, long dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : std::atol(it->second.c_str());
  }
  double GetDouble(const std::string& key, double dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : std::atof(it->second.c_str());
  }
};

const char* const kKnownFlags[] = {
    "runs",       "seed",         "time-budget", "engine",
    "dtd",        "exprs-per-run", "docs-per-run", "max-depth",
    "corpus-dir", "max-cases",    "json",        "no-minimize",
    "no-mutate",  "no-removal",   "quiet",       "help",
    "churn",      "churn-ops",    "partitions",  "recovery",
    "recovery-ops", "fsync",      "crash-points",
};

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

/// One saved/reported churn divergence.
struct ChurnCaseRecord {
  uint64_t run = 0;
  uint64_t seed = 0;
  std::string dtd;
  difftest::ChurnDivergence divergence;
  size_t ops_before = 0;
  size_t ops_after = 0;  ///< After minimization (== before when off).
  std::string file;      ///< Saved .xpredcase path, when --corpus-dir.
};

int EmitJson(const std::string& json, const Flags& flags) {
  std::string json_path = flags.Get("json", "-");
  if (json_path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return 0;
  }
  std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "xpred_fuzz: cannot write %s\n", json_path.c_str());
    return 2;
  }
  out << json;
  return 0;
}

/// Live-subscription fuzzing (--churn): generate, replay against the
/// epoch oracle, minimize and save divergences, summarize as JSON.
int RunChurnFuzz(const Flags& flags) {
  const uint64_t runs = static_cast<uint64_t>(flags.GetInt("runs", 50));
  const uint64_t base_seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string dtd = flags.Get("dtd", "both");
  if (dtd != "nitf" && dtd != "psd" && dtd != "both") {
    std::fprintf(stderr, "xpred_fuzz: bad --dtd '%s'\n", dtd.c_str());
    return 2;
  }
  const std::string corpus_dir = flags.Get("corpus-dir", "");
  const size_t max_cases = static_cast<size_t>(flags.GetInt("max-cases", 20));
  const bool minimize = !flags.Has("no-minimize");

  difftest::ChurnScriptOptions gen_template;
  gen_template.ops = static_cast<uint32_t>(flags.GetInt("churn-ops", 60));
  gen_template.documents =
      static_cast<uint32_t>(flags.GetInt("docs-per-run", 2));
  gen_template.doc_max_depth =
      static_cast<uint32_t>(flags.GetInt("max-depth", 8));
  if (flags.Has("no-mutate")) gen_template.mutation_prob = 0;

  struct {
    uint64_t scripts = 0, ops = 0, filters = 0, subscribes = 0;
    uint64_t unsubscribes = 0, epochs_published = 0, minimize_probes = 0;
  } counters;
  std::vector<ChurnCaseRecord> cases;
  uint64_t mismatches = 0;

  for (uint64_t run = 0; run < runs; ++run) {
    difftest::ChurnScriptOptions gen = gen_template;
    gen.seed = base_seed + run;
    gen.dtd = dtd == "both" ? (run % 2 == 0 ? "nitf" : "psd") : dtd;
    difftest::ChurnScript script = difftest::GenerateChurnScript(gen);

    difftest::ChurnReplayOptions replay;
    replay.partitions = flags.Has("partitions")
                            ? static_cast<size_t>(flags.GetInt("partitions", 2))
                            : 1 + run % 3;
    Result<difftest::ChurnReplayResult> result =
        difftest::ReplayChurnScript(script, replay);
    if (!result.ok()) {
      std::fprintf(stderr, "xpred_fuzz: churn replay failed (seed %llu): %s\n",
                   static_cast<unsigned long long>(gen.seed),
                   result.status().ToString().c_str());
      return 2;
    }
    ++counters.scripts;
    counters.ops += script.ops.size();
    counters.filters += result->filters;
    counters.subscribes += result->subscribes;
    counters.unsubscribes += result->unsubscribes;
    counters.epochs_published += result->epochs_published;
    if (!result->divergence.has_value()) continue;

    ++mismatches;
    ChurnCaseRecord record;
    record.run = run;
    record.seed = gen.seed;
    record.dtd = script.dtd;
    record.ops_before = script.ops.size();
    difftest::ChurnScript repro = script;
    if (minimize) {
      difftest::ChurnMinimizeResult shrunk =
          difftest::MinimizeChurnScript(script, replay);
      counters.minimize_probes += shrunk.probes;
      repro = std::move(shrunk.script);
    }
    record.ops_after = repro.ops.size();
    Result<difftest::ChurnReplayResult> confirm =
        difftest::ReplayChurnScript(repro, replay);
    if (!confirm.ok() || !confirm->divergence.has_value()) {
      // Minimization must preserve divergence; fall back to the
      // original script rather than store a passing repro.
      repro = script;
      record.ops_after = repro.ops.size();
      confirm = std::move(result);
    }
    record.divergence = *confirm->divergence;

    if (!corpus_dir.empty() && cases.size() < max_cases) {
      difftest::Case c;
      c.mode = "churn";
      c.seed = repro.seed;
      c.dtd = repro.dtd;
      c.description = "live filter diverged from epoch oracle at op " +
                      std::to_string(record.divergence.op_index) +
                      " (epoch " +
                      std::to_string(record.divergence.epoch) + ")";
      c.documents = repro.documents;
      c.script = difftest::SerializeChurnOps(repro.ops);
      for (const std::vector<core::ExprId>& sids : confirm->oracle_results) {
        c.expected_matches.emplace_back(sids.begin(), sids.end());
      }
      Status saved = difftest::CorpusStore(corpus_dir).Save(c, &record.file);
      if (!saved.ok()) {
        std::fprintf(stderr, "xpred_fuzz: cannot save repro: %s\n",
                     saved.ToString().c_str());
      }
    }
    if (cases.size() < max_cases) cases.push_back(std::move(record));
  }

  std::string json;
  json += "{\n";
  json += "  \"schema_version\": 1,\n";
  json += "  \"tool\": \"xpred_fuzz\",\n";
  json += "  \"mode\": \"churn\",\n";
  json += "  \"seed\": " + std::to_string(base_seed) + ",\n";
  json += "  \"runs_requested\": " + std::to_string(runs) + ",\n";
  json += "  \"runs_executed\": " + std::to_string(counters.scripts) + ",\n";
  json += "  \"mismatches\": " + std::to_string(mismatches) + ",\n";
  json += "  \"counters\": {\n";
  json += "    \"scripts\": " + std::to_string(counters.scripts) + ",\n";
  json += "    \"ops\": " + std::to_string(counters.ops) + ",\n";
  json += "    \"filters\": " + std::to_string(counters.filters) + ",\n";
  json += "    \"subscribes\": " + std::to_string(counters.subscribes) + ",\n";
  json += "    \"unsubscribes\": " + std::to_string(counters.unsubscribes) +
          ",\n";
  json += "    \"epochs_published\": " +
          std::to_string(counters.epochs_published) + ",\n";
  json += "    \"minimize_probes\": " +
          std::to_string(counters.minimize_probes) + "\n";
  json += "  },\n";
  json += std::string("  \"status\": \"") +
          (mismatches == 0 ? "agree" : "diverged") + "\",\n";
  json += "  \"cases\": [";
  for (size_t i = 0; i < cases.size(); ++i) {
    const ChurnCaseRecord& r = cases[i];
    json += i == 0 ? "\n" : ",\n";
    json += "    {\n";
    json += "      \"run\": " + std::to_string(r.run) + ",\n";
    json += "      \"seed\": " + std::to_string(r.seed) + ",\n";
    json += "      \"dtd\": \"" + JsonEscape(r.dtd) + "\",\n";
    json += "      \"op_index\": " +
            std::to_string(r.divergence.op_index) + ",\n";
    json += "      \"epoch\": " + std::to_string(r.divergence.epoch) + ",\n";
    json += "      \"doc\": " + std::to_string(r.divergence.doc) + ",\n";
    json += "      \"ops_before\": " + std::to_string(r.ops_before) + ",\n";
    json += "      \"ops_after\": " + std::to_string(r.ops_after) + ",\n";
    json += "      \"file\": \"" + JsonEscape(r.file) + "\"\n";
    json += "    }";
  }
  json += cases.empty() ? "]\n" : "\n  ]\n";
  json += "}\n";
  int rc = EmitJson(json, flags);
  if (rc != 0) return rc;

  if (!flags.Has("quiet")) {
    std::fprintf(
        stderr,
        "xpred_fuzz: churn %llu/%llu scripts, %llu ops, %llu filter ops, "
        "%llu epochs, %llu mismatches\n",
        static_cast<unsigned long long>(counters.scripts),
        static_cast<unsigned long long>(runs),
        static_cast<unsigned long long>(counters.ops),
        static_cast<unsigned long long>(counters.filters),
        static_cast<unsigned long long>(counters.epochs_published),
        static_cast<unsigned long long>(mismatches));
    for (const ChurnCaseRecord& r : cases) {
      std::string where = r.file.empty() ? std::string() : (" -> " + r.file);
      std::fprintf(stderr,
                   "  case: seed=%llu op=%zu epoch=%llu ops %zu -> %zu%s\n",
                   static_cast<unsigned long long>(r.seed),
                   r.divergence.op_index,
                   static_cast<unsigned long long>(r.divergence.epoch),
                   r.ops_before, r.ops_after, where.c_str());
    }
  }
  return mismatches == 0 ? 0 : 1;
}

/// One saved/reported recovery divergence.
struct RecoveryCaseRecord {
  uint64_t run = 0;
  uint64_t seed = 0;
  std::string crash_site;
  uint64_t crash_visit = 0;
  std::string divergence;
  std::string file;  ///< Saved .xpredcase path, when --corpus-dir.
};

/// Crash/recovery fuzzing (--recovery): generate scripts, kill the
/// durable store at sampled fault-site visits, recover, verify against
/// the durable-prefix oracle, summarize as JSON.
int RunRecoveryFuzz(const Flags& flags) {
  const uint64_t runs = static_cast<uint64_t>(flags.GetInt("runs", 10));
  const uint64_t base_seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string dtd = flags.Get("dtd", "both");
  if (dtd != "nitf" && dtd != "psd" && dtd != "both") {
    std::fprintf(stderr, "xpred_fuzz: bad --dtd '%s'\n", dtd.c_str());
    return 2;
  }
  const std::string fsync = flags.Get("fsync", "publish");
  if (fsync != "never" && fsync != "publish" && fsync != "always") {
    std::fprintf(stderr, "xpred_fuzz: bad --fsync '%s'\n", fsync.c_str());
    return 2;
  }
  const std::string corpus_dir = flags.Get("corpus-dir", "");
  const size_t max_cases = static_cast<size_t>(flags.GetInt("max-cases", 20));
  const size_t crash_points_per_site =
      static_cast<size_t>(flags.GetInt("crash-points", 4));

  difftest::RecoveryScriptOptions gen_template;
  gen_template.ops = static_cast<uint32_t>(flags.GetInt("recovery-ops", 40));
  gen_template.fsync = fsync;

  difftest::RecoveryReplayOptions replay;
  if (flags.Has("partitions")) {
    replay.partitions = static_cast<size_t>(flags.GetInt("partitions", 2));
  }
  const std::string scratch_root =
      (std::filesystem::temp_directory_path() /
       ("xpred-fuzz-recovery-" + std::to_string(base_seed)))
          .string();

  struct {
    uint64_t scripts = 0, ops = 0, crash_points = 0, crashes_fired = 0;
    uint64_t recoveries = 0, torn_tails = 0, records_replayed = 0;
  } counters;
  std::map<std::string, uint64_t> site_crash_points;
  std::map<std::string, uint64_t> site_mismatches;
  std::vector<RecoveryCaseRecord> cases;
  uint64_t mismatches = 0;

  for (uint64_t run = 0; run < runs; ++run) {
    difftest::RecoveryScriptOptions gen = gen_template;
    gen.seed = base_seed + run;
    gen.dtd = dtd == "both" ? (run % 2 == 0 ? "nitf" : "psd") : dtd;
    difftest::RecoveryScript script = difftest::GenerateRecoveryScript(gen);
    ++counters.scripts;
    counters.ops += script.ops.size();

    // Fault-free baseline: enumerates the per-site visit domains and
    // proves the clean shutdown/reopen cycle is exact.
    replay.scratch_directory = scratch_root + "/baseline";
    Result<difftest::RecoveryReplayResult> baseline =
        difftest::ReplayRecoveryScript(script, replay);
    if (!baseline.ok()) {
      std::fprintf(stderr,
                   "xpred_fuzz: recovery replay failed (seed %llu): %s\n",
                   static_cast<unsigned long long>(gen.seed),
                   baseline.status().ToString().c_str());
      return 2;
    }
    if (baseline->divergence.has_value()) {
      ++mismatches;
      RecoveryCaseRecord record;
      record.run = run;
      record.seed = gen.seed;
      record.divergence = *baseline->divergence;
      if (cases.size() < max_cases) cases.push_back(std::move(record));
      continue;
    }

    for (const auto& [site, visits] : baseline->fault_site_visits) {
      if (visits == 0) continue;
      size_t points = visits;
      if (crash_points_per_site > 0 && points > crash_points_per_site) {
        points = crash_points_per_site;
      }
      const uint64_t stride = (visits + points - 1) / points;
      for (uint64_t visit = 0; visit < visits; visit += stride) {
        difftest::RecoveryScript crash_script = script;
        crash_script.crash_site = site;
        crash_script.crash_visit = visit;
        replay.scratch_directory =
            scratch_root + "/crash-" + std::to_string(visit);
        Result<difftest::RecoveryReplayResult> result =
            difftest::ReplayRecoveryScript(crash_script, replay);
        if (!result.ok()) {
          std::fprintf(
              stderr,
              "xpred_fuzz: crash replay failed (seed %llu %s#%llu): %s\n",
              static_cast<unsigned long long>(gen.seed), site.c_str(),
              static_cast<unsigned long long>(visit),
              result.status().ToString().c_str());
          return 2;
        }
        ++counters.crash_points;
        ++site_crash_points[site];
        if (result->crashed) ++counters.crashes_fired;
        ++counters.recoveries;
        if (result->report.wal_bytes_truncated > 0) ++counters.torn_tails;
        counters.records_replayed += result->report.wal_records_replayed;
        if (!result->divergence.has_value()) continue;

        ++mismatches;
        ++site_mismatches[site];
        RecoveryCaseRecord record;
        record.run = run;
        record.seed = gen.seed;
        record.crash_site = site;
        record.crash_visit = visit;
        record.divergence = *result->divergence;
        if (!corpus_dir.empty() && cases.size() < max_cases) {
          difftest::Case c;
          c.mode = "recovery";
          c.seed = crash_script.seed;
          c.dtd = crash_script.dtd;
          c.fsync = crash_script.fsync;
          c.crash_site = site;
          c.crash_visit = visit;
          c.description = "recovered index diverged from durable-prefix "
                          "oracle after kill at " +
                          site + "#" + std::to_string(visit);
          c.documents = crash_script.documents;
          c.script = difftest::SerializeRecoveryOps(crash_script.ops);
          // The stored table is what this build recovered; the replay
          // re-derives the oracle and reports the divergence either way.
          c.expected_table = result->recovered_table;
          Status saved =
              difftest::CorpusStore(corpus_dir).Save(c, &record.file);
          if (!saved.ok()) {
            std::fprintf(stderr, "xpred_fuzz: cannot save repro: %s\n",
                         saved.ToString().c_str());
          }
        }
        if (cases.size() < max_cases) cases.push_back(std::move(record));
      }
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(scratch_root, ec);

  std::string json;
  json += "{\n";
  json += "  \"schema_version\": 1,\n";
  json += "  \"tool\": \"xpred_fuzz\",\n";
  json += "  \"mode\": \"recovery\",\n";
  json += "  \"seed\": " + std::to_string(base_seed) + ",\n";
  json += "  \"fsync\": \"" + JsonEscape(fsync) + "\",\n";
  json += "  \"runs_requested\": " + std::to_string(runs) + ",\n";
  json += "  \"runs_executed\": " + std::to_string(counters.scripts) + ",\n";
  json += "  \"mismatches\": " + std::to_string(mismatches) + ",\n";
  json += "  \"counters\": {\n";
  json += "    \"scripts\": " + std::to_string(counters.scripts) + ",\n";
  json += "    \"ops\": " + std::to_string(counters.ops) + ",\n";
  json += "    \"crash_points\": " + std::to_string(counters.crash_points) +
          ",\n";
  json += "    \"crashes_fired\": " + std::to_string(counters.crashes_fired) +
          ",\n";
  json += "    \"recoveries\": " + std::to_string(counters.recoveries) + ",\n";
  json += "    \"torn_tails\": " + std::to_string(counters.torn_tails) + ",\n";
  json += "    \"records_replayed\": " +
          std::to_string(counters.records_replayed) + "\n";
  json += "  },\n";
  json += "  \"sites\": [";
  bool first_site = true;
  for (const auto& [site, points] : site_crash_points) {
    json += first_site ? "\n" : ",\n";
    first_site = false;
    json += "    {\n";
    json += "      \"site\": \"" + JsonEscape(site) + "\",\n";
    json += "      \"crash_points\": " + std::to_string(points) + ",\n";
    json += "      \"mismatches\": " + std::to_string(site_mismatches[site]) +
            "\n";
    json += "    }";
  }
  json += first_site ? "],\n" : "\n  ],\n";
  json += std::string("  \"status\": \"") +
          (mismatches == 0 ? "agree" : "diverged") + "\",\n";
  json += "  \"cases\": [";
  for (size_t i = 0; i < cases.size(); ++i) {
    const RecoveryCaseRecord& r = cases[i];
    json += i == 0 ? "\n" : ",\n";
    json += "    {\n";
    json += "      \"run\": " + std::to_string(r.run) + ",\n";
    json += "      \"seed\": " + std::to_string(r.seed) + ",\n";
    json += "      \"crash_site\": \"" + JsonEscape(r.crash_site) + "\",\n";
    json += "      \"crash_visit\": " + std::to_string(r.crash_visit) + ",\n";
    json += "      \"divergence\": \"" + JsonEscape(r.divergence) + "\",\n";
    json += "      \"file\": \"" + JsonEscape(r.file) + "\"\n";
    json += "    }";
  }
  json += cases.empty() ? "]\n" : "\n  ]\n";
  json += "}\n";
  int rc = EmitJson(json, flags);
  if (rc != 0) return rc;

  if (!flags.Has("quiet")) {
    std::fprintf(
        stderr,
        "xpred_fuzz: recovery %llu/%llu scripts, %llu crash points, "
        "%llu recoveries, %llu torn tails, %llu mismatches\n",
        static_cast<unsigned long long>(counters.scripts),
        static_cast<unsigned long long>(runs),
        static_cast<unsigned long long>(counters.crash_points),
        static_cast<unsigned long long>(counters.recoveries),
        static_cast<unsigned long long>(counters.torn_tails),
        static_cast<unsigned long long>(mismatches));
    for (const RecoveryCaseRecord& r : cases) {
      std::string where = r.file.empty() ? std::string() : (" -> " + r.file);
      std::fprintf(stderr, "  case: seed=%llu %s#%llu %s%s\n",
                   static_cast<unsigned long long>(r.seed),
                   r.crash_site.c_str(),
                   static_cast<unsigned long long>(r.crash_visit),
                   r.divergence.c_str(), where.c_str());
    }
  }
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!Flags::Parse(argc, argv, &flags)) return Usage();
  if (flags.Has("help")) return Usage();
  for (const auto& [key, value] : flags.values) {
    bool known = false;
    for (const char* k : kKnownFlags) {
      if (key == k) known = true;
    }
    if (!known) {
      std::fprintf(stderr, "unknown option '--%s'\n", key.c_str());
      return Usage();
    }
  }

  if (flags.Has("churn")) return RunChurnFuzz(flags);
  if (flags.Has("recovery")) return RunRecoveryFuzz(flags);

  difftest::DifferentialHarness::Options options;
  options.runs = static_cast<uint64_t>(flags.GetInt("runs", 100));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  options.time_budget_seconds = flags.GetDouble("time-budget", 0);
  options.dtd = flags.Get("dtd", "both");
  options.exprs_per_run =
      static_cast<uint32_t>(flags.GetInt("exprs-per-run", 12));
  options.docs_per_run =
      static_cast<uint32_t>(flags.GetInt("docs-per-run", 2));
  options.doc_max_depth = static_cast<uint32_t>(flags.GetInt("max-depth", 8));
  options.corpus_dir = flags.Get("corpus-dir", "");
  options.max_cases = static_cast<size_t>(flags.GetInt("max-cases", 20));
  options.minimize = !flags.Has("no-minimize");
  if (flags.Has("no-mutate")) options.mutation_prob = 0;
  options.exercise_removal = !flags.Has("no-removal");
  if (flags.Has("engine")) {
    std::string engine_list = flags.Get("engine", "");
    for (std::string_view piece : Split(engine_list, ',')) {
      if (!piece.empty()) options.engines.emplace_back(piece);
    }
  }

  Result<difftest::DifferentialHarness::Summary> summary =
      difftest::DifferentialHarness(options).Run();
  if (!summary.ok()) {
    std::fprintf(stderr, "xpred_fuzz: %s\n",
                 summary.status().ToString().c_str());
    return 2;
  }

  std::string json = summary->ToJson();
  std::string json_path = flags.Get("json", "-");
  if (json_path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
  } else {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "xpred_fuzz: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << json;
  }

  if (!flags.Has("quiet")) {
    std::fprintf(stderr,
                 "xpred_fuzz: %llu/%llu runs, %llu documents, %llu verdicts "
                 "across %zu engines, %llu mismatches%s\n",
                 static_cast<unsigned long long>(summary->runs_executed),
                 static_cast<unsigned long long>(summary->runs_requested),
                 static_cast<unsigned long long>(summary->documents),
                 static_cast<unsigned long long>(summary->verdicts),
                 summary->engines.size(),
                 static_cast<unsigned long long>(summary->mismatches),
                 summary->time_budget_exhausted ? " (time budget hit)" : "");
    for (const auto& record : summary->cases) {
      std::string where =
          record.file.empty() ? std::string() : (" -> " + record.file);
      std::fprintf(stderr,
                   "  case: engine=%s kind=%s run=%llu nodes=%zu exprs=%zu%s\n",
                   record.engine.c_str(), record.kind.c_str(),
                   static_cast<unsigned long long>(record.run),
                   record.document_nodes, record.repro.expressions.size(),
                   where.c_str());
    }
  }
  return summary->mismatches == 0 ? 0 : 1;
}
