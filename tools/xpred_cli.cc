// xpred command-line tool.
//
//   xpred_cli encode <xpath>...
//       Print the ordered-predicate encoding of each expression.
//
//   xpred_cli filter --exprs=FILE [--engine=NAME] [--stats]
//       [--metrics=PATH] [--metrics-json=PATH] [--trace=PATH]
//       [--max-depth=N] [--max-doc-bytes=N] [--deadline-ms=MS]
//       [--fail-fast | --quarantine]
//       <xml-file>...
//       Load expressions (one per line; '#' comments) and filter each
//       document, printing the matching expressions.
//       Engines: basic, basic-pc, basic-pc-ap (default), trie-dfs,
//       yfilter, xfilter, index-filter.
//       --metrics writes Prometheus text exposition ('-' = stdout),
//       --metrics-json writes the JSON metrics sidecar, and --trace
//       writes per-document stage spans as JSONL.
//       Resource governance: --max-depth caps element nesting (default
//       512), --max-doc-bytes caps document size (0 = off),
//       --deadline-ms sets a per-document soft deadline. Failing
//       documents are quarantined and the run continues (--quarantine,
//       the default); --fail-fast aborts on the first failure.
//
//       Workload analytics: --profile-workload[=K] attaches a
//       WorkloadProfiler to matcher-family engines and prints the
//       top-K cost/selectivity table (default K=10) after the run;
//       with --metrics-json the sidecar gains a "workload" section.
//
//       Diagnostics: --flight-recorder[=N] installs an always-on
//       per-thread event journal (N events/thread, default 4096);
//       with --metrics-json the sidecar gains a "recorder" section.
//       --diag-dir=DIR arms the crash handler (bundle written to
//       DIR/xpred_crash_bundle.json on SIGSEGV/SIGBUS/SIGABRT or
//       std::terminate; implies --flight-recorder).
//       --watchdog-ms[=MS] attaches a stall watchdog to the parallel
//       engine (default: 4x --deadline-ms, else 1000ms); with
//       --diag-dir a stall dumps DIR/xpred_watchdog_bundle.json.
//       --inject-fault=SITE:KIND[:OFFSET] installs a deterministic
//       fault rule (KIND: abort, status, deadline) for testing the
//       crash-diagnosis path.
//
//   xpred_cli explain [--json] [--max-paths=N] [--max-steps=N]
//       <xml-file> <xpath>
//       Re-run the predicate-encoding pipeline for one (document,
//       expression) pair in recording mode and print the per-path
//       predicate evaluations and occurrence-determination trace —
//       naming the first failing predicate on a miss. Exit status:
//       0 match, 1 no match, 2 error (grep convention).
//
//   xpred_cli diagnose <bundle>
//       Read a diagnostic bundle (crash, watchdog, or manual) back in
//       and print a merged, time-sorted JSON timeline with decoded
//       event details (stage names, status codes, fault sites). Exit
//       status: 0 ok, 2 unreadable or schema-invalid bundle.
//
//   xpred_cli churn [--seed=S] [--dtd=nitf|psd] [--partitions=P]
//       [--filter-threads=N] [--workers=N] [--docs=N] [--depth=D]
//       [--subs=N] [--ops=N] [--publish-every=K] [--batches=N]
//       [--batch-size=N] [--non-blocking] [--quiet]
//       Run the concurrent subscription-churn harness: N filter
//       threads batch live documents against epoch-snapshot indexes
//       while a mutation thread subscribes/unsubscribes and publishes
//       every K ops (DESIGN.md §15); afterwards every batch's match
//       set is checked against a rebuild-from-scratch oracle at the
//       batch's pinned epoch. --non-blocking uses TryPublish so the
//       writer never waits on pinned snapshots. Exit status: 0 all
//       batches agree with the oracle, 1 divergence or batch error,
//       2 setup failure.
//
//   xpred_cli generate-queries --dtd=nitf|psd --count=N [--max-length=L]
//       [--min-length=L] [--wildcard=W] [--descendant=DO] [--filters=K]
//       [--nested=P] [--seed=S] [--non-distinct]
//       Print a query workload, one expression per line.
//
//   xpred_cli generate-docs --dtd=nitf|psd --count=N [--depth=D] [--seed=S]
//       Print generated XML documents to stdout, separated by blank
//       lines (count=1 gives a single well-formed document).
//
//   xpred_cli serve-obs [--port=N] [--bind=ADDR] [--exprs=FILE]
//       [--dtd=nitf|psd] [--subs=N] [--docs=N] [--depth=D]
//       [--threads=N] [--partition=P] [--batches=N] [--duration-ms=MS]
//       [--batch-delay-ms=MS] [--stall-test] [--stall-ms=MS]
//       [--store=DIR] [--seed=S] [--topk=K] [--quiet]
//       Long-running introspection mode: filter generated (or
//       file-loaded) expressions against generated documents in a
//       loop while an embedded HTTP server (DESIGN.md §17) serves
//       /metrics, /healthz, /readyz, /statusz, /debug/workload,
//       /debug/recorder, and /debug/trace on 127.0.0.1 (--port=0
//       picks an ephemeral port; the bound address is printed as
//       "serving on HOST:PORT"). --stall-test wedges a phantom
//       watchdog slot so /healthz flips to 503 (scrape-test hook).
//       --store=DIR opens a durable subscription store and surfaces
//       its recovery/poison state as a health check. Runs until
//       --batches/--duration-ms or SIGINT/SIGTERM.
//
//       The `filter` subcommand accepts --obs-port=N (plus
//       --obs-linger-ms=MS) to serve the same endpoints for the
//       duration of a one-shot filtering run.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analytics/explain.h"
#include "analytics/workload_profiler.h"
#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/interner.h"
#include "common/json.h"
#include "common/string_util.h"
#include "core/encoder.h"
#include "core/governor.h"
#include "core/matcher.h"
#include "exec/parallel_filter.h"
#include "indexfilter/index_filter.h"
#include "common/stopwatch.h"
#include "obs/crash_handler.h"
#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "obs/introspection_server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "storage/durable_store.h"
#include "testing/churn_harness.h"
#include "xfilter/xfilter.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/parser.h"
#include "xpath/query_generator.h"
#include "yfilter/yfilter.h"

namespace {

using namespace xpred;  // NOLINT: tool brevity.

/// Minimal --key=value flag parser; positional arguments are returned
/// in order.
struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;

  static Args Parse(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          args.flags[arg.substr(2)] = "true";
        } else {
          args.flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        args.positional.push_back(arg);
      }
    }
    return args;
  }

  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt : it->second;
  }
  double GetDouble(const std::string& key, double dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt : std::atof(it->second.c_str());
  }
  long GetInt(const std::string& key, long dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt : std::atol(it->second.c_str());
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }

  /// Rejects flags a subcommand does not understand; a typo'd
  /// --metrics must not silently produce a run with no metrics.
  bool RejectUnknown(std::initializer_list<const char*> known) const {
    bool ok = true;
    for (const auto& [key, value] : flags) {
      bool found = false;
      for (const char* k : known) {
        if (key == k) { found = true; break; }
      }
      if (!found) {
        std::fprintf(stderr, "unknown option '--%s'\n", key.c_str());
        ok = false;
      }
    }
    return ok;
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  xpred_cli encode <xpath>...\n"
               "  xpred_cli filter --exprs=FILE [--engine=NAME] [--stats] "
               "[--metrics=PATH] [--metrics-json=PATH] [--trace=PATH] "
               "[--max-depth=N] [--max-doc-bytes=N] [--deadline-ms=MS] "
               "[--threads=N] [--partition=P] [--batch] "
               "[--profile-workload[=K]] "
               "[--flight-recorder[=N]] [--diag-dir=DIR] "
               "[--watchdog-ms[=MS]] [--inject-fault=SITE:KIND[:OFF]] "
               "[--obs-port=N] [--obs-linger-ms=MS] "
               "[--fail-fast|--quarantine] <xml-file>...\n"
               "  xpred_cli serve-obs [--port=N] [--bind=ADDR] "
               "[--exprs=FILE] [--dtd=nitf|psd] [--subs=N] [--docs=N] "
               "[--depth=D] [--threads=N] [--partition=P] [--batches=N] "
               "[--duration-ms=MS] [--batch-delay-ms=MS] [--stall-test] "
               "[--stall-ms=MS] [--store=DIR] [--seed=S] [--topk=K] "
               "[--quiet]\n"
               "  xpred_cli diagnose <bundle>\n"
               "  xpred_cli explain [--json] [--max-paths=N] "
               "[--max-steps=N] <xml-file> <xpath>\n"
               "  xpred_cli churn [--seed=S] [--dtd=nitf|psd] "
               "[--partitions=P] [--filter-threads=N] [--workers=N] "
               "[--docs=N] [--depth=D] [--subs=N] [--ops=N] "
               "[--publish-every=K] [--batches=N] [--batch-size=N] "
               "[--non-blocking] [--quiet]\n"
               "  xpred_cli generate-queries --dtd=nitf|psd --count=N "
               "[options]\n"
               "  xpred_cli generate-docs --dtd=nitf|psd --count=N "
               "[--depth=D] [--seed=S]\n"
               "  xpred_cli snapshot --store=DIR [--exprs=FILE] "
               "[--fsync=never|publish|always] [--partitions=P] [--quiet]\n"
               "  xpred_cli restore --store=DIR [--json] [--quiet]\n");
  return 2;
}

const xml::Dtd* DtdByName(const std::string& name) {
  if (name == "nitf") return &xml::NitfLikeDtd();
  if (name == "psd") return &xml::PsdLikeDtd();
  return nullptr;
}

int CmdEncode(const Args& args) {
  if (!args.RejectUnknown({})) return Usage();
  if (args.positional.empty()) return Usage();
  Interner interner;
  int rc = 0;
  for (const std::string& text : args.positional) {
    Result<xpath::PathExpr> expr = xpath::ParseXPath(text);
    if (!expr.ok()) {
      std::fprintf(stderr, "%s: %s\n", text.c_str(),
                   expr.status().ToString().c_str());
      rc = 1;
      continue;
    }
    if (expr->HasNestedPaths()) {
      Result<core::Decomposition> decomposition =
          core::DecomposeNested(*expr);
      if (!decomposition.ok()) {
        std::fprintf(stderr, "%s: %s\n", text.c_str(),
                     decomposition.status().ToString().c_str());
        rc = 1;
        continue;
      }
      std::printf("%s   (nested; decomposed)\n", text.c_str());
      for (const core::SubExpression& sub : decomposition->subs) {
        Result<core::EncodedExpression> enc = core::EncodeExpression(
            sub.path, core::AttributeMode::kInline, &interner);
        std::printf("  %-24s (pos, =, %u)  %s\n",
                    sub.path.ToString().c_str(), sub.branch_step,
                    enc.ok() ? enc->ToString(interner).c_str()
                             : enc.status().ToString().c_str());
      }
      continue;
    }
    Result<core::EncodedExpression> enc = core::EncodeExpression(
        *expr, core::AttributeMode::kInline, &interner);
    if (!enc.ok()) {
      std::fprintf(stderr, "%s: %s\n", text.c_str(),
                   enc.status().ToString().c_str());
      rc = 1;
      continue;
    }
    std::printf("%-28s %s\n", text.c_str(),
                enc->ToString(interner).c_str());
  }
  return rc;
}

std::unique_ptr<core::FilterEngine> EngineByName(const std::string& name,
                                                 size_t threads,
                                                 size_t partitions) {
  core::Matcher::Options options;
  if (name == "basic") {
    options.mode = core::Matcher::Mode::kBasic;
  } else if (name == "basic-pc") {
    options.mode = core::Matcher::Mode::kPrefixCovering;
  } else if (name == "basic-pc-ap" || name == "parallel") {
    options.mode = core::Matcher::Mode::kPrefixCoveringAccessPredicate;
  } else if (name == "trie-dfs") {
    options.mode = core::Matcher::Mode::kTrieDfs;
  } else if (name == "yfilter" || name == "xfilter" ||
             name == "index-filter") {
    if (threads > 1 || partitions > 1) {
      std::fprintf(stderr,
                   "--threads/--partition require a matcher-family engine "
                   "(got '%s')\n",
                   name.c_str());
      return nullptr;
    }
    if (name == "yfilter") return std::make_unique<yfilter::YFilter>();
    if (name == "xfilter") return std::make_unique<xfilter::XFilter>();
    return std::make_unique<indexfilter::IndexFilter>();
  } else {
    return nullptr;
  }
  if (name == "parallel" || threads > 1 || partitions > 1) {
    exec::ParallelFilter::Options popts;
    popts.threads = threads;
    popts.partitions = partitions;
    popts.matcher = options;
    return std::make_unique<exec::ParallelFilter>(popts);
  }
  return std::make_unique<core::Matcher>(options);
}

int CmdFilter(const Args& args) {
  if (!args.RejectUnknown({"exprs", "engine", "stats", "metrics",
                           "metrics-json", "trace", "max-depth",
                           "max-doc-bytes", "deadline-ms", "fail-fast",
                           "quarantine", "threads", "partition", "batch",
                           "profile-workload", "flight-recorder", "diag-dir",
                           "watchdog-ms", "inject-fault", "obs-port",
                           "obs-linger-ms"})) {
    return Usage();
  }
  std::string exprs_path = args.Get("exprs", "");
  if (exprs_path.empty() || args.positional.empty()) return Usage();
  if (args.Has("fail-fast") && args.Has("quarantine")) {
    std::fprintf(stderr, "--fail-fast and --quarantine are exclusive\n");
    return 2;
  }

  std::ifstream exprs_file(exprs_path);
  if (!exprs_file) {
    std::fprintf(stderr, "cannot open %s\n", exprs_path.c_str());
    return 1;
  }

  size_t threads =
      std::strtoull(args.Get("threads", "1").c_str(), nullptr, 10);
  size_t partitions =
      std::strtoull(args.Get("partition", "1").c_str(), nullptr, 10);
  if (threads == 0) threads = 1;
  if (partitions == 0) partitions = 1;
  std::unique_ptr<core::FilterEngine> engine =
      EngineByName(args.Get("engine", "basic-pc-ap"), threads, partitions);
  if (engine == nullptr) {
    std::fprintf(stderr, "unknown engine '%s'\n",
                 args.Get("engine", "").c_str());
    return 2;
  }

  // Observability wiring: one registry for the run, optional JSONL
  // trace sink.
  obs::MetricsRegistry registry;
  engine->BindMetrics(&registry);
  std::unique_ptr<obs::JsonlSink> trace_sink;
  std::unique_ptr<obs::Tracer> tracer;
  std::string trace_path = args.Get("trace", "");
  if (!trace_path.empty()) {
    trace_sink = std::make_unique<obs::JsonlSink>(trace_path);
    if (!trace_sink->ok()) {
      std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
      return 1;
    }
    tracer = std::make_unique<obs::Tracer>(trace_sink.get());
    engine->set_tracer(tracer.get());
  }

  // Diagnostics wiring: flight recorder (always-on event journal),
  // deterministic fault injection for crash-path testing, and — after
  // the governor exists — the crash handler and watchdog. The guard
  // uninstalls every process-global hook on ALL return paths.
  const std::string diag_dir = args.Get("diag-dir", "");
  if (!diag_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(diag_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --diag-dir %s: %s\n",
                   diag_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (args.Has("flight-recorder") || !diag_dir.empty()) {
    obs::FlightRecorder::Options recorder_options;
    const std::string n = args.Get("flight-recorder", "true");
    if (n != "true") {
      recorder_options.events_per_thread =
          std::strtoull(n.c_str(), nullptr, 10);
    }
    recorder = std::make_unique<obs::FlightRecorder>(recorder_options);
    obs::FlightRecorder::Install(recorder.get());
  }
  struct DiagGuard {
    ~DiagGuard() {
      obs::CrashHandler::Uninstall();
      FaultInjector::Install(nullptr);
      obs::FlightRecorder::Install(nullptr);
    }
  } diag_guard;

  std::unique_ptr<FaultInjector> injector;
  const std::string inject = args.Get("inject-fault", "");
  if (!inject.empty() && inject != "true") {
    // SITE:KIND[:OFFSET] — e.g. engine.begin_document:abort:2
    std::vector<std::string> parts;
    size_t start = 0;
    while (true) {
      size_t colon = inject.find(':', start);
      parts.push_back(inject.substr(start, colon - start));
      if (colon == std::string::npos) break;
      start = colon + 1;
    }
    FaultInjector::Rule rule;
    rule.site = parts[0];
    const std::string kind = parts.size() > 1 ? parts[1] : "status";
    if (kind == "abort") {
      rule.kind = FaultInjector::FaultKind::kAbort;
    } else if (kind == "deadline") {
      rule.kind = FaultInjector::FaultKind::kDeadlineExpiry;
    } else if (kind == "status") {
      rule.kind = FaultInjector::FaultKind::kStatusFailure;
    } else {
      std::fprintf(stderr,
                   "--inject-fault kind must be abort, status, or deadline "
                   "(got '%s')\n",
                   kind.c_str());
      return 2;
    }
    if (parts.size() > 2) {
      rule.offset = std::strtoull(parts[2].c_str(), nullptr, 10);
    }
    injector = std::make_unique<FaultInjector>(42);
    injector->AddRule(rule);
    FaultInjector::Install(injector.get());
  }

  // Workload analytics: the profiler is an AttributionSink fed by the
  // matcher-family hot-path hooks (no-op for other engine families).
  std::unique_ptr<analytics::WorkloadProfiler> profiler;
  size_t profile_k = 10;
  auto* matcher_engine = dynamic_cast<core::Matcher*>(engine.get());
  auto* parallel_engine = dynamic_cast<exec::ParallelFilter*>(engine.get());
  if (args.Has("profile-workload")) {
    const std::string k = args.Get("profile-workload", "true");
    if (k != "true") profile_k = std::strtoull(k.c_str(), nullptr, 10);
    if (profile_k == 0) profile_k = 10;
    if (matcher_engine == nullptr && parallel_engine == nullptr) {
      std::fprintf(stderr,
                   "--profile-workload requires a matcher-family engine "
                   "(basic, basic-pc, basic-pc-ap, trie-dfs, parallel)\n");
      return 2;
    }
    profiler = std::make_unique<analytics::WorkloadProfiler>();
    if (matcher_engine != nullptr) {
      matcher_engine->set_attribution_sink(profiler.get());
    } else {
      parallel_engine->set_attribution_sink(profiler.get());
    }
  }

  std::unique_ptr<obs::Watchdog> watchdog;
  if (args.Has("watchdog-ms")) {
    if (parallel_engine == nullptr) {
      std::fprintf(stderr,
                   "--watchdog-ms requires the parallel engine "
                   "(--engine=parallel or --threads/--partition)\n");
      return 2;
    }
    obs::Watchdog::Options watchdog_options;
    const std::string ms = args.Get("watchdog-ms", "true");
    if (ms != "true") {
      watchdog_options.stall_timeout_ms =
          std::strtoull(ms.c_str(), nullptr, 10);
    } else {
      // Default stall threshold: a multiple of the per-document
      // deadline when one is set, else one second.
      const double deadline_ms =
          std::strtod(args.Get("deadline-ms", "0").c_str(), nullptr);
      watchdog_options.stall_timeout_ms =
          deadline_ms > 0 ? static_cast<uint64_t>(4 * deadline_ms) : 1000;
    }
    if (watchdog_options.stall_timeout_ms == 0) {
      watchdog_options.stall_timeout_ms = 1000;
    }
    watchdog_options.recorder = recorder.get();
    watchdog_options.registry = &registry;
    if (!diag_dir.empty()) {
      watchdog_options.dump_path = diag_dir + "/xpred_watchdog_bundle.json";
    }
    watchdog = std::make_unique<obs::Watchdog>(parallel_engine->threads(),
                                               watchdog_options);
    parallel_engine->set_watchdog(watchdog.get());
    watchdog->Start();
  }

  std::vector<std::string> expressions;
  std::string line;
  while (std::getline(exprs_file, line)) {
    std::string trimmed(Trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    Result<core::ExprId> id = engine->AddExpression(trimmed);
    if (!id.ok()) {
      std::fprintf(stderr, "skipping '%s': %s\n", trimmed.c_str(),
                   id.status().ToString().c_str());
      continue;
    }
    expressions.push_back(trimmed);
  }
  std::printf("loaded %zu expressions into %s\n", expressions.size(),
              std::string(engine->name()).c_str());

  // Resource governance: limits from the command line (0 = off,
  // except the depth cap which keeps its engine default), quarantine
  // by default, abort-on-first-failure with --fail-fast.
  core::IngestGovernor::Options governor_options;
  governor_options.limits = engine->resource_limits();
  governor_options.limits.max_document_bytes =
      std::strtoull(args.Get("max-doc-bytes", "0").c_str(), nullptr, 10);
  std::string max_depth = args.Get("max-depth", "");
  if (!max_depth.empty()) {
    governor_options.limits.max_element_depth =
        std::strtoull(max_depth.c_str(), nullptr, 10);
  }
  governor_options.limits.deadline_ms =
      std::strtod(args.Get("deadline-ms", "0").c_str(), nullptr);
  governor_options.fail_fast = args.Has("fail-fast");
  core::IngestGovernor governor(engine.get(), governor_options);

  if (!diag_dir.empty()) {
    obs::CrashHandler::Options crash_options;
    crash_options.bundle_path = diag_dir + "/xpred_crash_bundle.json";
    crash_options.recorder = recorder.get();
    crash_options.registry = &registry;
    Status st = obs::CrashHandler::Install(crash_options);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Live introspection plane (DESIGN.md §17): --obs-port serves
  // /metrics, /healthz, and the /debug endpoints for the duration of
  // the run. All handlers read hub-published snapshots; the filter
  // loops below publish through the rate-limited MaybePublishMetrics.
  std::unique_ptr<obs::IntrospectionHub> hub;
  std::unique_ptr<obs::IntrospectionServer> obs_server;
  if (args.Has("obs-port")) {
    hub = std::make_unique<obs::IntrospectionHub>();
    obs::IntrospectionHub::BuildInfo build = hub->build_info();
    build.version = "xpred_cli filter";
    hub->set_build_info(std::move(build));
    hub->set_recorder(recorder.get());
    if (watchdog != nullptr) hub->AddWatchdogCheck(watchdog.get());
    hub->AddBreakerCheck();
    hub->PublishMetrics(registry);
    obs::IntrospectionServer::Options obs_options;
    obs_options.port = static_cast<uint16_t>(
        std::strtoul(args.Get("obs-port", "0").c_str(), nullptr, 10));
    obs_server =
        std::make_unique<obs::IntrospectionServer>(hub.get(), obs_options);
    Status st = obs_server->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "introspection server: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("introspection: serving on %s:%u\n",
                obs_server->bind_address().c_str(),
                static_cast<unsigned>(obs_server->port()));
    std::fflush(stdout);
  }

  int rc = 0;
  if (args.Has("batch")) {
    // Batch mode: parse every document up front, then filter them all
    // through one FilterBatch call (the parallel fast path). Results
    // are reported per document, in input order.
    auto* parallel = dynamic_cast<exec::ParallelFilter*>(engine.get());
    if (parallel == nullptr) {
      std::fprintf(stderr,
                   "--batch requires a matcher-family engine "
                   "(use --engine=parallel or --threads/--partition)\n");
      return 2;
    }
    parallel->set_resource_limits(governor_options.limits);
    std::vector<xml::Document> documents;
    std::vector<std::string> doc_paths;
    for (const std::string& path : args.positional) {
      std::ifstream xml_file(path);
      if (!xml_file) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        rc = 1;
        continue;
      }
      std::stringstream buffer;
      buffer << xml_file.rdbuf();
      Result<xml::Document> doc = xml::Document::Parse(buffer.str());
      if (!doc.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     doc.status().ToString().c_str());
        rc = 1;
        continue;
      }
      documents.push_back(std::move(*doc));
      doc_paths.push_back(path);
    }
    std::vector<exec::DocRef> refs;
    refs.reserve(documents.size());
    for (const xml::Document& doc : documents) refs.push_back({&doc});
    exec::CollectingResultSink sink;
    (void)parallel->FilterBatch(refs, sink);  // Per-doc statuses below.
    if (hub != nullptr) hub->MaybePublishMetrics(registry);
    for (size_t d = 0; d < sink.results().size(); ++d) {
      const exec::CollectingResultSink::DocResult& result =
          sink.results()[d];
      if (!result.status.ok()) {
        std::fprintf(stderr, "%s: %s\n", doc_paths[d].c_str(),
                     result.status.ToString().c_str());
        // Error path: flush buffered spans now — a subsequent abort
        // (fail-fast, crash) must not lose the trace so far.
        if (tracer != nullptr) tracer->Flush();
        rc = 1;
        continue;
      }
      std::printf("%s: %zu match(es)\n", doc_paths[d].c_str(),
                  result.matched.size());
      for (core::ExprId id : result.matched) {
        std::printf("  [%u] %s\n", id, expressions[id].c_str());
      }
    }
  } else {
  for (const std::string& path : args.positional) {
    std::ifstream xml_file(path);
    if (!xml_file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      rc = 1;
      continue;
    }
    std::stringstream buffer;
    buffer << xml_file.rdbuf();
    std::vector<core::ExprId> matched;
    core::IngestGovernor::DocOutcome outcome;
    Status st = governor.FilterNext(buffer.str(), &matched, &outcome);
    if (!st.ok()) {
      // fail-fast: abort the run on the first failed document. Flush
      // buffered spans before bailing so the abort drops nothing.
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      if (tracer != nullptr) tracer->Flush();
      rc = 1;
      break;
    }
    if (!outcome.status.ok()) {
      std::fprintf(stderr, "%s: %s%s\n", path.c_str(),
                   outcome.status.ToString().c_str(),
                   outcome.quarantined ? " (quarantined)" : "");
      if (tracer != nullptr) tracer->Flush();
      rc = 1;
      continue;
    }
    std::printf("%s: %zu match(es)\n", path.c_str(), matched.size());
    for (core::ExprId id : matched) {
      std::printf("  [%u] %s\n", id, expressions[id].c_str());
    }
    if (hub != nullptr) hub->MaybePublishMetrics(registry);
  }
  if (!governor.quarantine().empty()) {
    std::fprintf(stderr, "%zu document(s) quarantined\n",
                 governor.quarantine().size());
  }
  }  // !--batch

  if (args.Has("stats")) {
    const core::EngineStats& stats = engine->stats();
    std::printf(
        "stats: %llu docs, %llu paths | encode %.1fus, predicate %.1fus, "
        "expression %.1fus, verify %.1fus, collect %.1fus | "
        "%llu occurrence runs\n",
        static_cast<unsigned long long>(stats.documents),
        static_cast<unsigned long long>(stats.paths), stats.encode_micros,
        stats.predicate_micros, stats.expression_micros,
        stats.verify_micros, stats.collect_micros,
        static_cast<unsigned long long>(stats.occurrence_runs));
  }

  std::string workload_json;
  if (profiler != nullptr) {
    // Resolve attribution keys (partition << 32 | internal id) to
    // expression / predicate display strings.
    std::unordered_map<uint64_t, std::string> expr_names;
    std::unordered_map<uint64_t, std::string> pred_names;
    auto add_names = [&](const core::Matcher& m, uint64_t ns) {
      std::vector<std::string> names = m.ExpressionStrings();
      for (size_t i = 0; i < names.size(); ++i) {
        expr_names[ns | i] = std::move(names[i]);
      }
      const core::PredicateIndex& index = m.predicate_index();
      for (size_t pid = 0; pid < index.distinct_count(); ++pid) {
        pred_names[ns | pid] =
            index.predicate(static_cast<core::PredicateId>(pid))
                .ToString(m.interner());
      }
    };
    if (matcher_engine != nullptr) {
      add_names(*matcher_engine, 0);
    } else {
      for (size_t p = 0; p < parallel_engine->partitions(); ++p) {
        add_names(parallel_engine->partition_matcher(p),
                  static_cast<uint64_t>(p) << 32);
      }
    }
    analytics::WorkloadProfiler::Report report = profiler->TopK(profile_k);
    std::printf("%s", analytics::RenderWorkloadTable(report, &expr_names,
                                                     &pred_names)
                          .c_str());
    workload_json =
        analytics::RenderWorkloadJson(report, &expr_names, &pred_names);
    if (hub != nullptr) hub->PublishWorkload(workload_json);

    obs::WorkloadSummary summary;
    summary.tracked_expressions = profiler->tracked();
    summary.evals = profiler->total_evals();
    summary.matches = profiler->total_matches();
    summary.cost = profiler->total_cost();
    summary.exact_mode = profiler->exact_mode();
    engine->PublishWorkload(summary);
  }

  if (tracer != nullptr) tracer->Flush();
  std::string metrics_path = args.Get("metrics", "");
  if (!metrics_path.empty()) {
    if (metrics_path == "-") {
      obs::WritePrometheusText(registry, &std::cout);
    } else {
      std::ofstream out(metrics_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
        return 1;
      }
      obs::WritePrometheusText(registry, &out);
    }
  }
  std::string metrics_json_path = args.Get("metrics-json", "");
  if (!metrics_json_path.empty()) {
    std::string recorder_json;
    if (recorder != nullptr) {
      recorder_json =
          obs::RenderRecorderSidecarJson(*recorder, recorder->Drain());
    }
    obs::MetricsSnapshot snapshot = registry.Snapshot();
    if (metrics_json_path == "-") {
      obs::WriteMetricsSidecarJson(snapshot, "xpred_cli filter",
                                   engine->name(), workload_json,
                                   recorder_json, &std::cout);
    } else {
      std::ofstream out(metrics_json_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", metrics_json_path.c_str());
        return 1;
      }
      obs::WriteMetricsSidecarJson(snapshot, "xpred_cli filter",
                                   engine->name(), workload_json,
                                   recorder_json, &out);
    }
  }
  if (obs_server != nullptr) {
    // Final publication so a last scrape observes the end-of-run
    // totals; --obs-linger-ms keeps the endpoints up for a scraper
    // that polls after the filtering work completed.
    hub->PublishMetrics(registry);
    const long linger =
        std::strtol(args.Get("obs-linger-ms", "0").c_str(), nullptr, 10);
    if (linger > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(linger));
    }
    obs_server->Stop();
  }
  if (watchdog != nullptr) watchdog->Stop();
  return rc;
}


/// SIGINT/SIGTERM flag for serve-obs; a signal handler may only touch
/// lock-free atomics.
std::atomic<bool> g_serve_obs_stop{false};

extern "C" void ServeObsSignalHandler(int) {
  g_serve_obs_stop.store(true, std::memory_order_relaxed);
}

/// Long-running introspection mode (DESIGN.md §17): a parallel filter
/// loop over generated documents with the full observability stack
/// attached — flight recorder, tracer ring, workload profiler,
/// watchdog — and the introspection HTTP server scraping it live.
/// Exists so operators (and the obs end-to-end tests) can exercise
/// every endpoint against a real running pipeline.
int CmdServeObs(const Args& args) {
  if (!args.RejectUnknown({"port", "bind", "exprs", "dtd", "subs", "docs",
                           "depth", "threads", "partition", "batches",
                           "duration-ms", "batch-delay-ms", "stall-test",
                           "stall-ms", "store", "seed", "topk", "quiet"})) {
    return Usage();
  }
  const bool quiet = args.Has("quiet");
  const uint64_t seed =
      std::strtoull(args.Get("seed", "42").c_str(), nullptr, 10);
  const xml::Dtd* dtd = DtdByName(args.Get("dtd", "nitf"));
  if (dtd == nullptr) {
    std::fprintf(stderr, "unknown --dtd '%s'\n",
                 args.Get("dtd", "").c_str());
    return 2;
  }

  size_t threads =
      std::strtoull(args.Get("threads", "2").c_str(), nullptr, 10);
  size_t partitions =
      std::strtoull(args.Get("partition", "1").c_str(), nullptr, 10);
  if (threads == 0) threads = 1;
  if (partitions == 0) partitions = 1;
  exec::ParallelFilter::Options pool_options;
  pool_options.threads = threads;
  pool_options.partitions = partitions;
  exec::ParallelFilter engine(pool_options);
  obs::MetricsRegistry registry;
  engine.BindMetrics(&registry);

  // Expressions: --exprs=FILE, else a DTD-guided generated workload.
  std::vector<std::string> expressions;
  const std::string exprs_path = args.Get("exprs", "");
  if (!exprs_path.empty()) {
    std::ifstream exprs_file(exprs_path);
    if (!exprs_file) {
      std::fprintf(stderr, "cannot open %s\n", exprs_path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(exprs_file, line)) {
      std::string trimmed(Trim(line));
      if (!trimmed.empty() && trimmed[0] != '#') {
        expressions.push_back(std::move(trimmed));
      }
    }
  } else {
    const size_t subs =
        std::strtoull(args.Get("subs", "200").c_str(), nullptr, 10);
    xpath::QueryGenerator::Options query_options;
    query_options.filters_per_expr = 1;  // Exercise predicate paths.
    xpath::QueryGenerator generator(dtd, query_options);
    expressions = generator.GenerateWorkloadStrings(subs, seed);
  }
  size_t loaded = 0;
  for (const std::string& expr : expressions) {
    if (engine.AddExpression(expr).ok()) ++loaded;
  }
  if (loaded == 0) {
    std::fprintf(stderr, "no expressions loaded\n");
    return 1;
  }

  // Documents: a fixed generated set, re-filtered every batch.
  const size_t doc_count =
      std::strtoull(args.Get("docs", "16").c_str(), nullptr, 10);
  xml::DocumentGenerator::Options doc_options;
  doc_options.max_depth = static_cast<uint32_t>(
      std::strtoul(args.Get("depth", "8").c_str(), nullptr, 10));
  xml::DocumentGenerator doc_generator(dtd, doc_options);
  std::vector<xml::Document> documents;
  documents.reserve(doc_count);
  for (size_t i = 0; i < doc_count; ++i) {
    documents.push_back(doc_generator.Generate(seed + i));
  }
  std::vector<exec::DocRef> refs;
  refs.reserve(documents.size());
  for (const xml::Document& doc : documents) refs.push_back({&doc});

  // Observability stack: recorder, tracer ring, profiler, watchdog.
  obs::FlightRecorder::Options recorder_options;
  recorder_options.max_threads = threads + 4;
  obs::FlightRecorder recorder(recorder_options);
  obs::FlightRecorder::Install(&recorder);
  struct RecorderGuard {
    ~RecorderGuard() { obs::FlightRecorder::Install(nullptr); }
  } recorder_guard;

  obs::RingBufferSink trace_ring;
  obs::Tracer tracer(&trace_ring);
  engine.set_tracer(&tracer);

  analytics::WorkloadProfiler profiler;
  engine.set_attribution_sink(&profiler);
  const size_t topk =
      std::strtoull(args.Get("topk", "10").c_str(), nullptr, 10);

  // --stall-test wedges one phantom watchdog slot (slot index
  // `threads`, beyond every real worker) so /healthz goes 503 while
  // the filter loop itself stays healthy.
  const bool stall_test = args.Has("stall-test");
  obs::Watchdog::Options watchdog_options;
  watchdog_options.stall_timeout_ms =
      std::strtoull(args.Get("stall-ms", "200").c_str(), nullptr, 10);
  watchdog_options.poll_interval_ms = 20;
  watchdog_options.recorder = &recorder;
  watchdog_options.registry = &registry;
  obs::Watchdog watchdog(threads + (stall_test ? 1 : 0),
                         watchdog_options);
  engine.set_watchdog(&watchdog);
  watchdog.Start();
  if (stall_test) watchdog.BeginWork(threads);  // Never beats again.

  // Optional durable store: opened (recovering whatever the directory
  // holds), loaded with the workload, surfaced as a liveness check.
  std::unique_ptr<storage::DurableSubscriptionStore> store;
  storage::RecoveryReport recovery;
  const std::string store_dir = args.Get("store", "");
  if (!store_dir.empty()) {
    storage::DurableSubscriptionStore::Options store_options;
    store_options.directory = store_dir;
    auto opened =
        storage::DurableSubscriptionStore::Open(store_options, &recovery);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open --store %s: %s\n",
                   store_dir.c_str(),
                   opened.status().ToString().c_str());
      watchdog.Stop();
      return 1;
    }
    store = std::move(*opened);
    for (const std::string& expr : expressions) {
      (void)store->Subscribe(expr);
    }
  }

  // The hub and its health checks; every probe below is thread-safe.
  obs::IntrospectionHub hub;
  obs::IntrospectionHub::BuildInfo build = hub.build_info();
  build.version = "xpred_cli serve-obs";
  hub.set_build_info(std::move(build));
  hub.set_recorder(&recorder);
  hub.AddWatchdogCheck(&watchdog);
  hub.AddBreakerCheck();
  if (store != nullptr) {
    storage::DurableSubscriptionStore* store_ptr = store.get();
    std::string recovered_detail =
        "recovered: " + std::to_string(recovery.wal_records_replayed) +
        " WAL record(s) replayed, " +
        std::to_string(recovery.wal_segments_quarantined +
                       recovery.snapshots_quarantined) +
        " file(s) quarantined, " +
        std::to_string(recovery.live_subscriptions) +
        " subscription(s) restored";
    hub.AddCheck("durable_store", obs::IntrospectionHub::CheckKind::kLiveness,
                 [store_ptr, recovered_detail] {
                   obs::HealthCheckResult result;
                   if (store_ptr->dead()) {
                     result.ok = false;
                     result.detail =
                         "write path poisoned by a WAL failure";
                   } else {
                     result.detail = recovered_detail;
                   }
                   return result;
                 });
  }
  hub.PublishMetrics(registry);

  obs::IntrospectionServer::Options server_options;
  server_options.bind_address = args.Get("bind", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(
      std::strtoul(args.Get("port", "0").c_str(), nullptr, 10));
  obs::IntrospectionServer server(&hub, server_options);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "introspection server: %s\n",
                 st.ToString().c_str());
    watchdog.Stop();
    return 1;
  }
  // The harness scripts parse this exact line for the bound port.
  std::printf("serving on %s:%u\n", server.bind_address().c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, ServeObsSignalHandler);
  std::signal(SIGTERM, ServeObsSignalHandler);

  // Names for workload attribution keys (partition << 32 | id),
  // resolved once — the subscription set is fixed for the run.
  std::unordered_map<uint64_t, std::string> expr_names;
  std::unordered_map<uint64_t, std::string> pred_names;
  for (size_t p = 0; p < engine.partitions(); ++p) {
    const core::Matcher& m = engine.partition_matcher(p);
    const uint64_t ns = static_cast<uint64_t>(p) << 32;
    std::vector<std::string> names = m.ExpressionStrings();
    for (size_t i = 0; i < names.size(); ++i) {
      expr_names[ns | i] = std::move(names[i]);
    }
    const core::PredicateIndex& index = m.predicate_index();
    for (size_t pid = 0; pid < index.distinct_count(); ++pid) {
      pred_names[ns | pid] =
          index.predicate(static_cast<core::PredicateId>(pid))
              .ToString(m.interner());
    }
  }

  const uint64_t max_batches =
      std::strtoull(args.Get("batches", "0").c_str(), nullptr, 10);
  const uint64_t duration_ms =
      std::strtoull(args.Get("duration-ms", "0").c_str(), nullptr, 10);
  const uint64_t batch_delay_ms =
      std::strtoull(args.Get("batch-delay-ms", "0").c_str(), nullptr, 10);
  Stopwatch run_clock;
  Stopwatch slow_publish_clock;  // Workload/span cadence (~2 Hz).
  std::vector<obs::IntrospectionHub::Span> recent_spans;
  uint64_t batches = 0;
  uint64_t docs_filtered = 0;
  int rc = 0;

  exec::CollectingResultSink sink;
  while (!g_serve_obs_stop.load(std::memory_order_relaxed)) {
    if (max_batches > 0 && batches >= max_batches) break;
    if (duration_ms > 0 &&
        run_clock.ElapsedNanos() >= duration_ms * 1'000'000.0) {
      break;
    }
    sink.clear();
    Status batch_status = engine.FilterBatch(refs, sink);
    if (!batch_status.ok()) {
      std::fprintf(stderr, "batch %llu: %s\n",
                   static_cast<unsigned long long>(batches),
                   batch_status.ToString().c_str());
      rc = 1;
      break;
    }
    ++batches;
    docs_filtered += sink.results().size();
    hub.MaybePublishMetrics(registry);

    // Heavier publications (profiler render, span conversion) at a
    // slower cadence than the metrics snapshot.
    if (slow_publish_clock.ElapsedNanos() >= 500e6) {
      slow_publish_clock.Reset();
      hub.PublishWorkload(analytics::RenderWorkloadJson(
          profiler.TopK(topk), &expr_names, &pred_names));
      for (const obs::TraceSpan& span : trace_ring.Drain()) {
        obs::IntrospectionHub::Span owned;
        owned.document = span.document;
        owned.stage = span.stage;
        owned.engine = std::string(span.engine);
        owned.start_nanos = span.start_nanos;
        owned.duration_nanos = span.duration_nanos;
        recent_spans.push_back(std::move(owned));
      }
      constexpr size_t kMaxSpans = 4096;
      if (recent_spans.size() > kMaxSpans) {
        recent_spans.erase(
            recent_spans.begin(),
            recent_spans.begin() +
                static_cast<ptrdiff_t>(recent_spans.size() - kMaxSpans));
      }
      hub.PublishSpans(recent_spans);
    }
    if (batch_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(batch_delay_ms));
    }
  }

  // Final publications so a last scrape sees end-of-run state.
  hub.PublishMetrics(registry);
  hub.PublishWorkload(analytics::RenderWorkloadJson(
      profiler.TopK(topk), &expr_names, &pred_names));
  server.Stop();
  watchdog.Stop();
  if (!quiet) {
    std::printf("serve-obs: %llu batch(es), %llu document(s) filtered, "
                "%llu expression(s), %llu HTTP request(s)\n",
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(docs_filtered),
                static_cast<unsigned long long>(loaded),
                static_cast<unsigned long long>(
                    server.http_stats().requests));
  }
  return rc;
}

/// Known fault-injection sites, for reversing the FNV-1a site hashes
/// carried in kFaultInjected events back to names.
const std::string_view kFaultSites[] = {
    faultsite::kParserBeginDocument, faultsite::kParserDecodeText,
    faultsite::kParserInput,         faultsite::kEngineBeginDocument,
    faultsite::kEncoderEncodePath,   faultsite::kMatcherProcessPath,
    faultsite::kYFilterTraverse,     faultsite::kXFilterElement,
    faultsite::kIndexFilterBuildIndex,
    faultsite::kStreamingStartElement,
};

std::string DiagJsonEscape(std::string_view text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Human-readable interpretation of one bundle event, keyed on the
/// stable type names the crash handler writes.
std::string DescribeEvent(std::string_view type, uint64_t a, uint64_t b) {
  auto code_name = [](uint64_t code) {
    return std::string(
        StatusCodeToString(static_cast<StatusCode>(code)));
  };
  std::string detail;
  if (type == "doc_begin") {
    detail = "doc #" + std::to_string(a) + " begun";
  } else if (type == "doc_end") {
    detail = "doc #" + std::to_string(a) + " done in " +
             std::to_string(b) + " ns";
  } else if (type == "stage") {
    const std::string_view stage =
        a < obs::kStageCount ? obs::StageName(static_cast<obs::Stage>(a))
                             : std::string_view("?");
    detail = "stage ";
    detail += stage;
    detail += " " + std::to_string(b) + " ns";
  } else if (type == "batch_begin") {
    detail = "batch of " + std::to_string(a) + " doc(s), " +
             std::to_string(b) + " task(s)";
  } else if (type == "batch_end") {
    detail = "batch of " + std::to_string(a) +
             " doc(s) finished: " + code_name(b);
  } else if (type == "quarantine") {
    detail = "doc #" + std::to_string(a) + " quarantined: " + code_name(b);
  } else if (type == "retry") {
    detail = "doc #" + std::to_string(a) + " retry " + std::to_string(b);
  } else if (type == "breaker") {
    const char* states[] = {"closed", "open", "half-open"};
    detail = "breaker -> ";
    detail += a < 3 ? states[a] : "?";
    detail += " after " + std::to_string(b) + " consecutive failure(s)";
  } else if (type == "shed") {
    detail = "doc #" + std::to_string(a) + " shed by open breaker";
  } else if (type == "steal") {
    detail = "worker " + std::to_string(a) + " stole from worker " +
             std::to_string(b);
  } else if (type == "park") {
    detail = "worker " + std::to_string(a) + " dry after " +
             std::to_string(b) + " failed probes";
  } else if (type == "budget_exhausted") {
    detail = "task " + std::to_string(a) + " died: " + code_name(b);
  } else if (type == "fault_injected") {
    detail = "injected fault at ";
    bool found = false;
    for (std::string_view site : kFaultSites) {
      if (Fnv1a(site) == a) {
        detail += site;
        found = true;
        break;
      }
    }
    if (!found) detail += "site#" + std::to_string(a);
    detail += " (visit " + std::to_string(b) + ")";
  } else if (type == "stall") {
    detail = "worker " + std::to_string(a) + " silent for " +
             std::to_string(b) + " ns";
  } else if (type == "watchdog_scan") {
    detail = "watchdog scan: " + std::to_string(a) + " busy, " +
             std::to_string(b) + " stalled";
  } else if (type == "dump") {
    const char* reasons[] = {"?", "signal", "terminate", "watchdog",
                             "manual"};
    detail = "diagnostic bundle dumped (";
    detail += a < 5 ? reasons[a] : "?";
    detail += ")";
  } else {
    detail = "a=" + std::to_string(a) + " b=" + std::to_string(b);
  }
  return detail;
}

int CmdDiagnose(const Args& args) {
  if (!args.RejectUnknown({})) return Usage();
  if (args.positional.size() != 1) return Usage();
  const std::string& bundle_path = args.positional[0];
  std::ifstream bundle_file(bundle_path);
  if (!bundle_file) {
    std::fprintf(stderr, "cannot open %s\n", bundle_path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << bundle_file.rdbuf();
  Result<JsonValue> parsed = ParseJson(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", bundle_path.c_str(),
                 parsed.status().ToString().c_str());
    return 2;
  }
  const JsonValue& bundle = *parsed;
  const JsonValue* version = bundle.Find("xpred_diag_bundle");
  if (version == nullptr || version->AsU64() != 1) {
    std::fprintf(stderr, "%s: not a version-1 xpred diagnostic bundle\n",
                 bundle_path.c_str());
    return 2;
  }

  // Collect (nanos, thread, type, a, b) tuples and time-sort them into
  // one merged timeline (the crash path writes per-thread ring order).
  struct TimelineEvent {
    uint64_t nanos = 0;
    uint64_t thread = 0;
    std::string type;
    uint64_t a = 0;
    uint64_t b = 0;
  };
  std::vector<TimelineEvent> events;
  const JsonValue* bundle_events = bundle.FindPath({"recorder", "events"});
  if (bundle_events != nullptr && bundle_events->is_array()) {
    for (const JsonValue& e : bundle_events->array()) {
      TimelineEvent event;
      if (const JsonValue* v = e.Find("nanos")) event.nanos = v->AsU64();
      if (const JsonValue* v = e.Find("thread")) event.thread = v->AsU64();
      if (const JsonValue* v = e.Find("type")) {
        event.type.assign(v->AsString());
      }
      if (const JsonValue* v = e.Find("a")) event.a = v->AsU64();
      if (const JsonValue* v = e.Find("b")) event.b = v->AsU64();
      events.push_back(std::move(event));
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TimelineEvent& x, const TimelineEvent& y) {
                     return x.nanos < y.nanos;
                   });

  std::string reason = "unknown";
  if (const JsonValue* v = bundle.Find("reason")) {
    reason.assign(v->AsString("unknown"));
  }
  const uint64_t signal_number =
      bundle.Find("signal") != nullptr ? bundle.Find("signal")->AsU64() : 0;

  uint64_t docs_begun = 0;
  uint64_t docs_done = 0;
  uint64_t stalls = 0;
  uint64_t faults = 0;
  std::string out = "{\"xpred_diag_timeline\": 1,\n  \"bundle\": \"";
  out += DiagJsonEscape(bundle_path);
  out += "\",\n  \"reason\": \"" + DiagJsonEscape(reason) + "\"";
  out += ",\n  \"signal\": " + std::to_string(signal_number);
  out += ",\n  \"event_count\": " + std::to_string(events.size());
  for (const char* key : {"dropped", "unregistered_drops"}) {
    const JsonValue* v = bundle.FindPath({"recorder", key});
    out += ",\n  \"";
    out += key;
    out += "\": " + std::to_string(v != nullptr ? v->AsU64() : 0);
  }
  out += ",\n  \"events\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TimelineEvent& e = events[i];
    if (e.type == "doc_begin") ++docs_begun;
    if (e.type == "doc_end") ++docs_done;
    if (e.type == "stall") ++stalls;
    if (e.type == "fault_injected") ++faults;
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"nanos\": " + std::to_string(e.nanos);
    out += ", \"thread\": " + std::to_string(e.thread);
    out += ", \"type\": \"" + DiagJsonEscape(e.type) + "\"";
    out += ", \"a\": " + std::to_string(e.a);
    out += ", \"b\": " + std::to_string(e.b);
    out += ", \"detail\": \"" +
           DiagJsonEscape(DescribeEvent(e.type, e.a, e.b)) + "\"}";
  }
  out += "\n  ],\n  \"thread_docs\": [";
  const JsonValue* thread_docs = bundle.FindPath({"recorder", "thread_docs"});
  if (thread_docs != nullptr && thread_docs->is_array()) {
    bool first = true;
    for (const JsonValue& doc : thread_docs->array()) {
      uint64_t thread = 0;
      uint64_t fingerprint = 0;
      uint64_t doc_seq = 0;
      if (const JsonValue* v = doc.Find("thread")) thread = v->AsU64();
      if (const JsonValue* v = doc.Find("fingerprint")) {
        fingerprint = v->AsU64();
      }
      if (const JsonValue* v = doc.Find("doc_seq")) doc_seq = v->AsU64();
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {\"thread\": " + std::to_string(thread);
      out += ", \"fingerprint\": " + std::to_string(fingerprint);
      out += ", \"doc_seq\": " + std::to_string(doc_seq) + "}";
    }
  }
  out += "\n  ],\n  \"summary\": {\"docs_begun\": ";
  out += std::to_string(docs_begun);
  out += ", \"docs_done\": " + std::to_string(docs_done);
  out += ", \"stalls\": " + std::to_string(stalls);
  out += ", \"faults_injected\": " + std::to_string(faults);
  out += "}\n}";
  std::printf("%s\n", out.c_str());
  return 0;
}

int CmdExplain(const Args& args) {
  if (!args.RejectUnknown({"json", "max-paths", "max-steps"})) {
    return Usage();
  }
  if (args.positional.size() != 2) return Usage();
  const std::string& path = args.positional[0];
  const std::string& xpath = args.positional[1];

  std::ifstream xml_file(path);
  if (!xml_file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << xml_file.rdbuf();
  Result<xml::Document> doc = xml::Document::Parse(buffer.str());
  if (!doc.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return 2;
  }

  analytics::ExplainOptions options;
  long max_paths = args.GetInt("max-paths", 0);
  if (max_paths > 0) options.max_paths = static_cast<size_t>(max_paths);
  long max_steps = args.GetInt("max-steps", 0);
  if (max_steps > 0) {
    options.max_steps_per_path = static_cast<size_t>(max_steps);
  }
  Result<analytics::ExplainResult> result =
      analytics::ExplainMatch(*doc, xpath, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  if (args.Has("json")) {
    std::printf("%s\n", analytics::ExplainToJson(*result).c_str());
  } else {
    std::printf("%s", analytics::ExplainToText(*result).c_str());
  }
  return result->matched ? 0 : 1;
}

int CmdChurn(const Args& args) {
  if (!args.RejectUnknown({"seed", "dtd", "partitions", "filter-threads",
                           "workers", "docs", "depth", "subs", "ops",
                           "publish-every", "batches", "batch-size",
                           "non-blocking", "quiet"})) {
    return Usage();
  }
  const std::string dtd = args.Get("dtd", "nitf");
  if (DtdByName(dtd) == nullptr) return Usage();

  difftest::ChurnHarness::Options options;
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  options.dtd = dtd;
  options.partitions = static_cast<size_t>(args.GetInt("partitions", 2));
  options.filter_threads =
      static_cast<size_t>(args.GetInt("filter-threads", 2));
  options.workers_per_filter = static_cast<size_t>(args.GetInt("workers", 1));
  options.documents = static_cast<size_t>(args.GetInt("docs", 4));
  options.doc_max_depth = static_cast<uint32_t>(args.GetInt("depth", 7));
  options.initial_subscriptions =
      static_cast<size_t>(args.GetInt("subs", 24));
  options.mutation_ops = static_cast<size_t>(args.GetInt("ops", 120));
  options.publish_every =
      static_cast<size_t>(args.GetInt("publish-every", 5));
  options.batches_per_thread =
      static_cast<size_t>(args.GetInt("batches", 20));
  options.batch_size = static_cast<size_t>(args.GetInt("batch-size", 3));
  options.non_blocking_publish = args.Has("non-blocking");

  Result<difftest::ChurnHarness::Report> report =
      difftest::ChurnHarness(options).Run();
  if (!report.ok()) {
    std::fprintf(stderr, "churn: %s\n", report.status().ToString().c_str());
    return 2;
  }

  if (!args.Has("quiet")) {
    std::printf("epochs_published:       %llu\n",
                static_cast<unsigned long long>(report->epochs_published));
    std::printf("subscribes:             %llu\n",
                static_cast<unsigned long long>(report->subscribes));
    std::printf("unsubscribes:           %llu\n",
                static_cast<unsigned long long>(report->unsubscribes));
    std::printf("publish_rejected:       %llu\n",
                static_cast<unsigned long long>(report->publish_rejected));
    std::printf("batches:                %llu\n",
                static_cast<unsigned long long>(report->batches));
    std::printf("documents_filtered:     %llu\n",
                static_cast<unsigned long long>(report->documents_filtered));
    std::printf("distinct_epochs_pinned: %llu\n",
                static_cast<unsigned long long>(
                    report->distinct_epochs_pinned));
    std::printf("max_live_subscriptions: %llu\n",
                static_cast<unsigned long long>(
                    report->max_live_subscriptions));
    std::printf("oracle_checks:          %llu\n",
                static_cast<unsigned long long>(report->oracle_checks));
    std::printf("batch_errors:           %llu\n",
                static_cast<unsigned long long>(report->batch_errors));
    std::printf("mismatches:             %llu\n",
                static_cast<unsigned long long>(report->mismatches));
  }
  for (const std::string& divergence : report->divergences) {
    std::fprintf(stderr, "churn divergence: %s\n", divergence.c_str());
  }
  return report->mismatches == 0 && report->batch_errors == 0 ? 0 : 1;
}

int CmdGenerateQueries(const Args& args) {
  if (!args.RejectUnknown({"dtd", "count", "seed", "max-length",
                           "min-length", "wildcard", "descendant",
                           "filters", "nested", "non-distinct"})) {
    return Usage();
  }
  const xml::Dtd* dtd = DtdByName(args.Get("dtd", "nitf"));
  if (dtd == nullptr) return Usage();
  xpath::QueryGenerator::Options options;
  options.max_length = static_cast<uint32_t>(args.GetInt("max-length", 6));
  options.min_length = static_cast<uint32_t>(args.GetInt("min-length", 2));
  options.wildcard_prob = args.GetDouble("wildcard", 0.2);
  options.descendant_prob = args.GetDouble("descendant", 0.2);
  options.filters_per_expr =
      static_cast<uint32_t>(args.GetInt("filters", 0));
  options.nested_path_prob = args.GetDouble("nested", 0.0);
  options.distinct = !args.Has("non-distinct");
  xpath::QueryGenerator generator(dtd, options);
  auto workload = generator.GenerateWorkloadStrings(
      static_cast<size_t>(args.GetInt("count", 100)),
      static_cast<uint64_t>(args.GetInt("seed", 42)));
  for (const std::string& expr : workload) {
    std::printf("%s\n", expr.c_str());
  }
  return 0;
}

int CmdGenerateDocs(const Args& args) {
  if (!args.RejectUnknown({"dtd", "count", "seed", "depth"})) {
    return Usage();
  }
  const xml::Dtd* dtd = DtdByName(args.Get("dtd", "nitf"));
  if (dtd == nullptr) return Usage();
  xml::DocumentGenerator::Options options;
  options.max_depth = static_cast<uint32_t>(args.GetInt("depth", 8));
  xml::DocumentGenerator generator(dtd, options);
  long count = args.GetInt("count", 1);
  uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  for (long i = 0; i < count; ++i) {
    xml::Document doc = generator.Generate(seed + static_cast<uint64_t>(i));
    std::printf("%s\n", doc.ToXml().c_str());
  }
  return 0;
}

/// Opens (recovering) the durable store at --store, subscribes any
/// expressions from --exprs (one canonical XPath per line), publishes,
/// and checkpoints — leaving an atomic snapshot plus a compacted WAL.
int CmdSnapshot(const Args& args) {
  if (!args.RejectUnknown({"store", "exprs", "fsync", "partitions",
                           "quiet"})) {
    return Usage();
  }
  const std::string dir = args.Get("store", "");
  if (dir.empty()) return Usage();

  storage::DurableSubscriptionStore::Options options;
  options.directory = dir;
  options.partitions = static_cast<size_t>(args.GetInt("partitions", 1));
  Result<storage::FsyncPolicy> fsync =
      storage::ParseFsyncPolicy(args.Get("fsync", "publish"));
  if (!fsync.ok()) {
    std::fprintf(stderr, "xpred_cli: %s\n", fsync.status().ToString().c_str());
    return 2;
  }
  options.fsync = *fsync;

  Result<std::unique_ptr<storage::DurableSubscriptionStore>> store =
      storage::DurableSubscriptionStore::Open(options);
  if (!store.ok()) {
    std::fprintf(stderr, "xpred_cli: cannot open store: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }

  size_t subscribed = 0;
  const std::string exprs_path = args.Get("exprs", "");
  if (!exprs_path.empty()) {
    std::ifstream in(exprs_path);
    if (!in) {
      std::fprintf(stderr, "xpred_cli: cannot read %s\n", exprs_path.c_str());
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      Result<core::ExprId> sid = (*store)->Subscribe(line);
      if (!sid.ok()) {
        std::fprintf(stderr, "xpred_cli: subscribe '%s': %s\n", line.c_str(),
                     sid.status().ToString().c_str());
        return 1;
      }
      ++subscribed;
    }
  }
  Result<uint64_t> epoch = (*store)->Publish();
  if (!epoch.ok()) {
    std::fprintf(stderr, "xpred_cli: publish: %s\n",
                 epoch.status().ToString().c_str());
    return 1;
  }
  Status checkpointed = (*store)->Checkpoint();
  if (!checkpointed.ok()) {
    std::fprintf(stderr, "xpred_cli: checkpoint: %s\n",
                 checkpointed.ToString().c_str());
    return 1;
  }
  if (!args.Has("quiet")) {
    const core::IndexEpochManager& manager = (*store)->manager();
    std::printf(
        "snapshot: %s at epoch %llu (%zu new, %zu live / %zu issued "
        "subscriptions, durable seq %llu)\n",
        dir.c_str(),
        static_cast<unsigned long long>(manager.current_epoch()), subscribed,
        manager.live_subscriptions(), manager.subscription_count(),
        static_cast<unsigned long long>((*store)->last_written_seq()));
  }
  return 0;
}

/// Recovers the durable store at --store and reports what happened:
/// human-readable by default, the versioned RecoveryReport JSON
/// (validated by scripts/check_diag_schema.py) with --json.
int CmdRestore(const Args& args) {
  if (!args.RejectUnknown({"store", "json", "quiet"})) return Usage();
  const std::string dir = args.Get("store", "");
  if (dir.empty()) return Usage();

  storage::DurableSubscriptionStore::Options options;
  options.directory = dir;
  storage::RecoveryReport report;
  Result<std::unique_ptr<storage::DurableSubscriptionStore>> store =
      storage::DurableSubscriptionStore::Open(options, &report);
  if (!store.ok()) {
    std::fprintf(stderr, "xpred_cli: recovery failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  if (args.Has("json")) {
    std::string json = report.ToJson();
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::printf("\n");
  } else if (!args.Has("quiet")) {
    std::printf("restore: %s\n", dir.c_str());
    if (report.snapshot_loaded) {
      std::printf("  snapshot: %s (epoch %llu, seq %llu, %llu entries)\n",
                  report.snapshot_path.c_str(),
                  static_cast<unsigned long long>(report.snapshot_epoch),
                  static_cast<unsigned long long>(report.snapshot_seq),
                  static_cast<unsigned long long>(report.snapshot_entries));
    } else {
      std::printf("  snapshot: none\n");
    }
    std::printf(
        "  wal: %llu records replayed (%llu sub, %llu unsub, %llu epoch "
        "marks) from %llu segments\n",
        static_cast<unsigned long long>(report.wal_records_replayed),
        static_cast<unsigned long long>(report.wal_subscribes),
        static_cast<unsigned long long>(report.wal_unsubscribes),
        static_cast<unsigned long long>(report.wal_epoch_marks),
        static_cast<unsigned long long>(report.wal_segments_scanned));
    if (report.wal_bytes_truncated > 0 ||
        report.wal_segments_quarantined > 0 ||
        report.snapshots_quarantined > 0) {
      std::printf(
          "  salvage: %llu torn bytes truncated, %llu segments and %llu "
          "snapshots quarantined\n",
          static_cast<unsigned long long>(report.wal_bytes_truncated),
          static_cast<unsigned long long>(report.wal_segments_quarantined),
          static_cast<unsigned long long>(report.snapshots_quarantined));
    }
    std::printf(
        "  recovered: %llu live / %llu issued subscriptions at epoch %llu "
        "(durable seq %llu)\n",
        static_cast<unsigned long long>(report.live_subscriptions),
        static_cast<unsigned long long>(report.issued_subscriptions),
        static_cast<unsigned long long>(report.published_epoch),
        static_cast<unsigned long long>(report.last_durable_seq));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args = Args::Parse(argc, argv, 2);
  if (command == "encode") return CmdEncode(args);
  if (command == "filter") return CmdFilter(args);
  if (command == "serve-obs") return CmdServeObs(args);
  if (command == "diagnose") return CmdDiagnose(args);
  if (command == "explain") return CmdExplain(args);
  if (command == "churn") return CmdChurn(args);
  if (command == "generate-queries") return CmdGenerateQueries(args);
  if (command == "generate-docs") return CmdGenerateDocs(args);
  if (command == "snapshot") return CmdSnapshot(args);
  if (command == "restore") return CmdRestore(args);
  return Usage();
}
