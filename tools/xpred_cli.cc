// xpred command-line tool.
//
//   xpred_cli encode <xpath>...
//       Print the ordered-predicate encoding of each expression.
//
//   xpred_cli filter --exprs=FILE [--engine=NAME] [--stats]
//       [--metrics=PATH] [--metrics-json=PATH] [--trace=PATH]
//       [--max-depth=N] [--max-doc-bytes=N] [--deadline-ms=MS]
//       [--fail-fast | --quarantine]
//       <xml-file>...
//       Load expressions (one per line; '#' comments) and filter each
//       document, printing the matching expressions.
//       Engines: basic, basic-pc, basic-pc-ap (default), trie-dfs,
//       yfilter, xfilter, index-filter.
//       --metrics writes Prometheus text exposition ('-' = stdout),
//       --metrics-json writes the JSON metrics sidecar, and --trace
//       writes per-document stage spans as JSONL.
//       Resource governance: --max-depth caps element nesting (default
//       512), --max-doc-bytes caps document size (0 = off),
//       --deadline-ms sets a per-document soft deadline. Failing
//       documents are quarantined and the run continues (--quarantine,
//       the default); --fail-fast aborts on the first failure.
//
//       Workload analytics: --profile-workload[=K] attaches a
//       WorkloadProfiler to matcher-family engines and prints the
//       top-K cost/selectivity table (default K=10) after the run;
//       with --metrics-json the sidecar gains a "workload" section.
//
//   xpred_cli explain [--json] [--max-paths=N] [--max-steps=N]
//       <xml-file> <xpath>
//       Re-run the predicate-encoding pipeline for one (document,
//       expression) pair in recording mode and print the per-path
//       predicate evaluations and occurrence-determination trace —
//       naming the first failing predicate on a miss. Exit status:
//       0 match, 1 no match, 2 error (grep convention).
//
//   xpred_cli generate-queries --dtd=nitf|psd --count=N [--max-length=L]
//       [--min-length=L] [--wildcard=W] [--descendant=DO] [--filters=K]
//       [--nested=P] [--seed=S] [--non-distinct]
//       Print a query workload, one expression per line.
//
//   xpred_cli generate-docs --dtd=nitf|psd --count=N [--depth=D] [--seed=S]
//       Print generated XML documents to stdout, separated by blank
//       lines (count=1 gives a single well-formed document).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "analytics/explain.h"
#include "analytics/workload_profiler.h"
#include "common/interner.h"
#include "common/string_util.h"
#include "core/encoder.h"
#include "core/governor.h"
#include "core/matcher.h"
#include "exec/parallel_filter.h"
#include "indexfilter/index_filter.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xfilter/xfilter.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/parser.h"
#include "xpath/query_generator.h"
#include "yfilter/yfilter.h"

namespace {

using namespace xpred;  // NOLINT: tool brevity.

/// Minimal --key=value flag parser; positional arguments are returned
/// in order.
struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;

  static Args Parse(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          args.flags[arg.substr(2)] = "true";
        } else {
          args.flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        args.positional.push_back(arg);
      }
    }
    return args;
  }

  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt : it->second;
  }
  double GetDouble(const std::string& key, double dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt : std::atof(it->second.c_str());
  }
  long GetInt(const std::string& key, long dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt : std::atol(it->second.c_str());
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }

  /// Rejects flags a subcommand does not understand; a typo'd
  /// --metrics must not silently produce a run with no metrics.
  bool RejectUnknown(std::initializer_list<const char*> known) const {
    bool ok = true;
    for (const auto& [key, value] : flags) {
      bool found = false;
      for (const char* k : known) {
        if (key == k) { found = true; break; }
      }
      if (!found) {
        std::fprintf(stderr, "unknown option '--%s'\n", key.c_str());
        ok = false;
      }
    }
    return ok;
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  xpred_cli encode <xpath>...\n"
               "  xpred_cli filter --exprs=FILE [--engine=NAME] [--stats] "
               "[--metrics=PATH] [--metrics-json=PATH] [--trace=PATH] "
               "[--max-depth=N] [--max-doc-bytes=N] [--deadline-ms=MS] "
               "[--threads=N] [--partition=P] [--batch] "
               "[--profile-workload[=K]] "
               "[--fail-fast|--quarantine] <xml-file>...\n"
               "  xpred_cli explain [--json] [--max-paths=N] "
               "[--max-steps=N] <xml-file> <xpath>\n"
               "  xpred_cli generate-queries --dtd=nitf|psd --count=N "
               "[options]\n"
               "  xpred_cli generate-docs --dtd=nitf|psd --count=N "
               "[--depth=D] [--seed=S]\n");
  return 2;
}

const xml::Dtd* DtdByName(const std::string& name) {
  if (name == "nitf") return &xml::NitfLikeDtd();
  if (name == "psd") return &xml::PsdLikeDtd();
  return nullptr;
}

int CmdEncode(const Args& args) {
  if (!args.RejectUnknown({})) return Usage();
  if (args.positional.empty()) return Usage();
  Interner interner;
  int rc = 0;
  for (const std::string& text : args.positional) {
    Result<xpath::PathExpr> expr = xpath::ParseXPath(text);
    if (!expr.ok()) {
      std::fprintf(stderr, "%s: %s\n", text.c_str(),
                   expr.status().ToString().c_str());
      rc = 1;
      continue;
    }
    if (expr->HasNestedPaths()) {
      Result<core::Decomposition> decomposition =
          core::DecomposeNested(*expr);
      if (!decomposition.ok()) {
        std::fprintf(stderr, "%s: %s\n", text.c_str(),
                     decomposition.status().ToString().c_str());
        rc = 1;
        continue;
      }
      std::printf("%s   (nested; decomposed)\n", text.c_str());
      for (const core::SubExpression& sub : decomposition->subs) {
        Result<core::EncodedExpression> enc = core::EncodeExpression(
            sub.path, core::AttributeMode::kInline, &interner);
        std::printf("  %-24s (pos, =, %u)  %s\n",
                    sub.path.ToString().c_str(), sub.branch_step,
                    enc.ok() ? enc->ToString(interner).c_str()
                             : enc.status().ToString().c_str());
      }
      continue;
    }
    Result<core::EncodedExpression> enc = core::EncodeExpression(
        *expr, core::AttributeMode::kInline, &interner);
    if (!enc.ok()) {
      std::fprintf(stderr, "%s: %s\n", text.c_str(),
                   enc.status().ToString().c_str());
      rc = 1;
      continue;
    }
    std::printf("%-28s %s\n", text.c_str(),
                enc->ToString(interner).c_str());
  }
  return rc;
}

std::unique_ptr<core::FilterEngine> EngineByName(const std::string& name,
                                                 size_t threads,
                                                 size_t partitions) {
  core::Matcher::Options options;
  if (name == "basic") {
    options.mode = core::Matcher::Mode::kBasic;
  } else if (name == "basic-pc") {
    options.mode = core::Matcher::Mode::kPrefixCovering;
  } else if (name == "basic-pc-ap" || name == "parallel") {
    options.mode = core::Matcher::Mode::kPrefixCoveringAccessPredicate;
  } else if (name == "trie-dfs") {
    options.mode = core::Matcher::Mode::kTrieDfs;
  } else if (name == "yfilter" || name == "xfilter" ||
             name == "index-filter") {
    if (threads > 1 || partitions > 1) {
      std::fprintf(stderr,
                   "--threads/--partition require a matcher-family engine "
                   "(got '%s')\n",
                   name.c_str());
      return nullptr;
    }
    if (name == "yfilter") return std::make_unique<yfilter::YFilter>();
    if (name == "xfilter") return std::make_unique<xfilter::XFilter>();
    return std::make_unique<indexfilter::IndexFilter>();
  } else {
    return nullptr;
  }
  if (name == "parallel" || threads > 1 || partitions > 1) {
    exec::ParallelFilter::Options popts;
    popts.threads = threads;
    popts.partitions = partitions;
    popts.matcher = options;
    return std::make_unique<exec::ParallelFilter>(popts);
  }
  return std::make_unique<core::Matcher>(options);
}

int CmdFilter(const Args& args) {
  if (!args.RejectUnknown({"exprs", "engine", "stats", "metrics",
                           "metrics-json", "trace", "max-depth",
                           "max-doc-bytes", "deadline-ms", "fail-fast",
                           "quarantine", "threads", "partition", "batch",
                           "profile-workload"})) {
    return Usage();
  }
  std::string exprs_path = args.Get("exprs", "");
  if (exprs_path.empty() || args.positional.empty()) return Usage();
  if (args.Has("fail-fast") && args.Has("quarantine")) {
    std::fprintf(stderr, "--fail-fast and --quarantine are exclusive\n");
    return 2;
  }

  std::ifstream exprs_file(exprs_path);
  if (!exprs_file) {
    std::fprintf(stderr, "cannot open %s\n", exprs_path.c_str());
    return 1;
  }

  size_t threads =
      std::strtoull(args.Get("threads", "1").c_str(), nullptr, 10);
  size_t partitions =
      std::strtoull(args.Get("partition", "1").c_str(), nullptr, 10);
  if (threads == 0) threads = 1;
  if (partitions == 0) partitions = 1;
  std::unique_ptr<core::FilterEngine> engine =
      EngineByName(args.Get("engine", "basic-pc-ap"), threads, partitions);
  if (engine == nullptr) {
    std::fprintf(stderr, "unknown engine '%s'\n",
                 args.Get("engine", "").c_str());
    return 2;
  }

  // Observability wiring: one registry for the run, optional JSONL
  // trace sink.
  obs::MetricsRegistry registry;
  engine->BindMetrics(&registry);
  std::unique_ptr<obs::JsonlSink> trace_sink;
  std::unique_ptr<obs::Tracer> tracer;
  std::string trace_path = args.Get("trace", "");
  if (!trace_path.empty()) {
    trace_sink = std::make_unique<obs::JsonlSink>(trace_path);
    if (!trace_sink->ok()) {
      std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
      return 1;
    }
    tracer = std::make_unique<obs::Tracer>(trace_sink.get());
    engine->set_tracer(tracer.get());
  }

  // Workload analytics: the profiler is an AttributionSink fed by the
  // matcher-family hot-path hooks (no-op for other engine families).
  std::unique_ptr<analytics::WorkloadProfiler> profiler;
  size_t profile_k = 10;
  auto* matcher_engine = dynamic_cast<core::Matcher*>(engine.get());
  auto* parallel_engine = dynamic_cast<exec::ParallelFilter*>(engine.get());
  if (args.Has("profile-workload")) {
    const std::string k = args.Get("profile-workload", "true");
    if (k != "true") profile_k = std::strtoull(k.c_str(), nullptr, 10);
    if (profile_k == 0) profile_k = 10;
    if (matcher_engine == nullptr && parallel_engine == nullptr) {
      std::fprintf(stderr,
                   "--profile-workload requires a matcher-family engine "
                   "(basic, basic-pc, basic-pc-ap, trie-dfs, parallel)\n");
      return 2;
    }
    profiler = std::make_unique<analytics::WorkloadProfiler>();
    if (matcher_engine != nullptr) {
      matcher_engine->set_attribution_sink(profiler.get());
    } else {
      parallel_engine->set_attribution_sink(profiler.get());
    }
  }

  std::vector<std::string> expressions;
  std::string line;
  while (std::getline(exprs_file, line)) {
    std::string trimmed(Trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    Result<core::ExprId> id = engine->AddExpression(trimmed);
    if (!id.ok()) {
      std::fprintf(stderr, "skipping '%s': %s\n", trimmed.c_str(),
                   id.status().ToString().c_str());
      continue;
    }
    expressions.push_back(trimmed);
  }
  std::printf("loaded %zu expressions into %s\n", expressions.size(),
              std::string(engine->name()).c_str());

  // Resource governance: limits from the command line (0 = off,
  // except the depth cap which keeps its engine default), quarantine
  // by default, abort-on-first-failure with --fail-fast.
  core::IngestGovernor::Options governor_options;
  governor_options.limits = engine->resource_limits();
  governor_options.limits.max_document_bytes =
      std::strtoull(args.Get("max-doc-bytes", "0").c_str(), nullptr, 10);
  std::string max_depth = args.Get("max-depth", "");
  if (!max_depth.empty()) {
    governor_options.limits.max_element_depth =
        std::strtoull(max_depth.c_str(), nullptr, 10);
  }
  governor_options.limits.deadline_ms =
      std::strtod(args.Get("deadline-ms", "0").c_str(), nullptr);
  governor_options.fail_fast = args.Has("fail-fast");
  core::IngestGovernor governor(engine.get(), governor_options);

  int rc = 0;
  if (args.Has("batch")) {
    // Batch mode: parse every document up front, then filter them all
    // through one FilterBatch call (the parallel fast path). Results
    // are reported per document, in input order.
    auto* parallel = dynamic_cast<exec::ParallelFilter*>(engine.get());
    if (parallel == nullptr) {
      std::fprintf(stderr,
                   "--batch requires a matcher-family engine "
                   "(use --engine=parallel or --threads/--partition)\n");
      return 2;
    }
    parallel->set_resource_limits(governor_options.limits);
    std::vector<xml::Document> documents;
    std::vector<std::string> doc_paths;
    for (const std::string& path : args.positional) {
      std::ifstream xml_file(path);
      if (!xml_file) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        rc = 1;
        continue;
      }
      std::stringstream buffer;
      buffer << xml_file.rdbuf();
      Result<xml::Document> doc = xml::Document::Parse(buffer.str());
      if (!doc.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     doc.status().ToString().c_str());
        rc = 1;
        continue;
      }
      documents.push_back(std::move(*doc));
      doc_paths.push_back(path);
    }
    std::vector<exec::DocRef> refs;
    refs.reserve(documents.size());
    for (const xml::Document& doc : documents) refs.push_back({&doc});
    exec::CollectingResultSink sink;
    (void)parallel->FilterBatch(refs, sink);  // Per-doc statuses below.
    for (size_t d = 0; d < sink.results().size(); ++d) {
      const exec::CollectingResultSink::DocResult& result =
          sink.results()[d];
      if (!result.status.ok()) {
        std::fprintf(stderr, "%s: %s\n", doc_paths[d].c_str(),
                     result.status.ToString().c_str());
        rc = 1;
        continue;
      }
      std::printf("%s: %zu match(es)\n", doc_paths[d].c_str(),
                  result.matched.size());
      for (core::ExprId id : result.matched) {
        std::printf("  [%u] %s\n", id, expressions[id].c_str());
      }
    }
  } else {
  for (const std::string& path : args.positional) {
    std::ifstream xml_file(path);
    if (!xml_file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      rc = 1;
      continue;
    }
    std::stringstream buffer;
    buffer << xml_file.rdbuf();
    std::vector<core::ExprId> matched;
    core::IngestGovernor::DocOutcome outcome;
    Status st = governor.FilterNext(buffer.str(), &matched, &outcome);
    if (!st.ok()) {
      // fail-fast: abort the run on the first failed document.
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      rc = 1;
      break;
    }
    if (!outcome.status.ok()) {
      std::fprintf(stderr, "%s: %s%s\n", path.c_str(),
                   outcome.status.ToString().c_str(),
                   outcome.quarantined ? " (quarantined)" : "");
      rc = 1;
      continue;
    }
    std::printf("%s: %zu match(es)\n", path.c_str(), matched.size());
    for (core::ExprId id : matched) {
      std::printf("  [%u] %s\n", id, expressions[id].c_str());
    }
  }
  if (!governor.quarantine().empty()) {
    std::fprintf(stderr, "%zu document(s) quarantined\n",
                 governor.quarantine().size());
  }
  }  // !--batch

  if (args.Has("stats")) {
    const core::EngineStats& stats = engine->stats();
    std::printf(
        "stats: %llu docs, %llu paths | encode %.1fus, predicate %.1fus, "
        "expression %.1fus, verify %.1fus, collect %.1fus | "
        "%llu occurrence runs\n",
        static_cast<unsigned long long>(stats.documents),
        static_cast<unsigned long long>(stats.paths), stats.encode_micros,
        stats.predicate_micros, stats.expression_micros,
        stats.verify_micros, stats.collect_micros,
        static_cast<unsigned long long>(stats.occurrence_runs));
  }

  std::string workload_json;
  if (profiler != nullptr) {
    // Resolve attribution keys (partition << 32 | internal id) to
    // expression / predicate display strings.
    std::unordered_map<uint64_t, std::string> expr_names;
    std::unordered_map<uint64_t, std::string> pred_names;
    auto add_names = [&](const core::Matcher& m, uint64_t ns) {
      std::vector<std::string> names = m.ExpressionStrings();
      for (size_t i = 0; i < names.size(); ++i) {
        expr_names[ns | i] = std::move(names[i]);
      }
      const core::PredicateIndex& index = m.predicate_index();
      for (size_t pid = 0; pid < index.distinct_count(); ++pid) {
        pred_names[ns | pid] =
            index.predicate(static_cast<core::PredicateId>(pid))
                .ToString(m.interner());
      }
    };
    if (matcher_engine != nullptr) {
      add_names(*matcher_engine, 0);
    } else {
      for (size_t p = 0; p < parallel_engine->partitions(); ++p) {
        add_names(parallel_engine->partition_matcher(p),
                  static_cast<uint64_t>(p) << 32);
      }
    }
    analytics::WorkloadProfiler::Report report = profiler->TopK(profile_k);
    std::printf("%s", analytics::RenderWorkloadTable(report, &expr_names,
                                                     &pred_names)
                          .c_str());
    workload_json =
        analytics::RenderWorkloadJson(report, &expr_names, &pred_names);

    obs::WorkloadSummary summary;
    summary.tracked_expressions = profiler->tracked();
    summary.evals = profiler->total_evals();
    summary.matches = profiler->total_matches();
    summary.cost = profiler->total_cost();
    summary.exact_mode = profiler->exact_mode();
    engine->PublishWorkload(summary);
  }

  if (tracer != nullptr) tracer->Flush();
  std::string metrics_path = args.Get("metrics", "");
  if (!metrics_path.empty()) {
    if (metrics_path == "-") {
      obs::WritePrometheusText(registry, &std::cout);
    } else {
      std::ofstream out(metrics_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
        return 1;
      }
      obs::WritePrometheusText(registry, &out);
    }
  }
  std::string metrics_json_path = args.Get("metrics-json", "");
  if (!metrics_json_path.empty()) {
    obs::MetricsSnapshot snapshot = registry.Snapshot();
    if (metrics_json_path == "-") {
      obs::WriteMetricsSidecarJson(snapshot, "xpred_cli filter",
                                   engine->name(), workload_json,
                                   &std::cout);
    } else {
      std::ofstream out(metrics_json_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", metrics_json_path.c_str());
        return 1;
      }
      obs::WriteMetricsSidecarJson(snapshot, "xpred_cli filter",
                                   engine->name(), workload_json, &out);
    }
  }
  return rc;
}

int CmdExplain(const Args& args) {
  if (!args.RejectUnknown({"json", "max-paths", "max-steps"})) {
    return Usage();
  }
  if (args.positional.size() != 2) return Usage();
  const std::string& path = args.positional[0];
  const std::string& xpath = args.positional[1];

  std::ifstream xml_file(path);
  if (!xml_file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << xml_file.rdbuf();
  Result<xml::Document> doc = xml::Document::Parse(buffer.str());
  if (!doc.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return 2;
  }

  analytics::ExplainOptions options;
  long max_paths = args.GetInt("max-paths", 0);
  if (max_paths > 0) options.max_paths = static_cast<size_t>(max_paths);
  long max_steps = args.GetInt("max-steps", 0);
  if (max_steps > 0) {
    options.max_steps_per_path = static_cast<size_t>(max_steps);
  }
  Result<analytics::ExplainResult> result =
      analytics::ExplainMatch(*doc, xpath, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  if (args.Has("json")) {
    std::printf("%s\n", analytics::ExplainToJson(*result).c_str());
  } else {
    std::printf("%s", analytics::ExplainToText(*result).c_str());
  }
  return result->matched ? 0 : 1;
}

int CmdGenerateQueries(const Args& args) {
  if (!args.RejectUnknown({"dtd", "count", "seed", "max-length",
                           "min-length", "wildcard", "descendant",
                           "filters", "nested", "non-distinct"})) {
    return Usage();
  }
  const xml::Dtd* dtd = DtdByName(args.Get("dtd", "nitf"));
  if (dtd == nullptr) return Usage();
  xpath::QueryGenerator::Options options;
  options.max_length = static_cast<uint32_t>(args.GetInt("max-length", 6));
  options.min_length = static_cast<uint32_t>(args.GetInt("min-length", 2));
  options.wildcard_prob = args.GetDouble("wildcard", 0.2);
  options.descendant_prob = args.GetDouble("descendant", 0.2);
  options.filters_per_expr =
      static_cast<uint32_t>(args.GetInt("filters", 0));
  options.nested_path_prob = args.GetDouble("nested", 0.0);
  options.distinct = !args.Has("non-distinct");
  xpath::QueryGenerator generator(dtd, options);
  auto workload = generator.GenerateWorkloadStrings(
      static_cast<size_t>(args.GetInt("count", 100)),
      static_cast<uint64_t>(args.GetInt("seed", 42)));
  for (const std::string& expr : workload) {
    std::printf("%s\n", expr.c_str());
  }
  return 0;
}

int CmdGenerateDocs(const Args& args) {
  if (!args.RejectUnknown({"dtd", "count", "seed", "depth"})) {
    return Usage();
  }
  const xml::Dtd* dtd = DtdByName(args.Get("dtd", "nitf"));
  if (dtd == nullptr) return Usage();
  xml::DocumentGenerator::Options options;
  options.max_depth = static_cast<uint32_t>(args.GetInt("depth", 8));
  xml::DocumentGenerator generator(dtd, options);
  long count = args.GetInt("count", 1);
  uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  for (long i = 0; i < count; ++i) {
    xml::Document doc = generator.Generate(seed + static_cast<uint64_t>(i));
    std::printf("%s\n", doc.ToXml().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args = Args::Parse(argc, argv, 2);
  if (command == "encode") return CmdEncode(args);
  if (command == "filter") return CmdFilter(args);
  if (command == "explain") return CmdExplain(args);
  if (command == "generate-queries") return CmdGenerateQueries(args);
  if (command == "generate-docs") return CmdGenerateDocs(args);
  return Usage();
}
