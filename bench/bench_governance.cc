// Governance overhead guard: matcher throughput with resource limits
// enabled-but-unhit must sit within noise of the ungoverned baseline.
//
// Three configurations over the same workload and engine:
//   unlimited        — every knob 0: checkpoints short-circuit.
//   production-unhit — ResourceLimits::Production() (deadline widened
//                      so slow CI cannot trip it): every checkpoint
//                      active, none firing.
//   injector-armed   — production-unhit plus an installed FaultInjector
//                      whose only rule has probability 0: the price of
//                      consulting an injector that never fires.
//
// The fourth axis — checkpoints compiled out entirely — is a build
// flag, not a runtime option: configure with
// -DCMAKE_CXX_FLAGS=-DXPRED_DISABLE_FAULT_INJECTION and re-run this
// binary to compare.

#include "bench_util.h"

#include "common/fault_injection.h"
#include "common/limits.h"

namespace xpred::bench {
namespace {

enum Config : long { kUnlimited = 0, kProductionUnhit = 1, kInjectorArmed = 2 };

const char* const kConfigs[] = {"unlimited", "production-unhit",
                                "injector-armed"};

ResourceLimits ConfigLimits(long config) {
  if (config == kUnlimited) return ResourceLimits::Unlimited();
  ResourceLimits limits = ResourceLimits::Production();
  limits.deadline_ms = 60000;  // Active but untrippable on any CI box.
  return limits;
}

void BM_GovernanceOverhead(benchmark::State& state) {
  WorkloadSpec spec;
  spec.psd = false;
  spec.distinct = true;
  spec.expressions = Scaled(25000);
  spec.max_length = 6;
  spec.wildcard = 0.2;
  spec.descendant = 0.2;

  const long config = state.range(0);
  FaultInjector injector(1);
  if (config == kInjectorArmed) {
    FaultInjector::Rule rule;
    rule.site = std::string(faultsite::kMatcherProcessPath);
    rule.probability = 0.0;  // Consulted on every path, never fires.
    injector.AddRule(rule);
    FaultInjector::Install(&injector);
  }

  core::FilterEngine& engine = GetLoadedEngine("basic-pc-ap", spec);
  engine.set_resource_limits(ConfigLimits(config));
  RunFilterBenchmark(state, "basic-pc-ap", spec);

  // Leave the shared cached engine ungoverned for other benchmarks.
  engine.set_resource_limits(ResourceLimits::Unlimited());
  FaultInjector::Install(nullptr);
}

void RegisterAll() {
  for (size_t c = 0; c < std::size(kConfigs); ++c) {
    std::string name = std::string("Governance/") + kConfigs[c];
    benchmark::RegisterBenchmark(name.c_str(), BM_GovernanceOverhead)
        ->Args({static_cast<long>(c)})
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace xpred::bench

BENCHMARK_MAIN();
