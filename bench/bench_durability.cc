// Durability-tax benchmark: what does the write-ahead log cost the
// subscription write path, and how fast does a cold store recover?
//
// Plain-main binary (no google-benchmark harness): the same generated
// expression workload is subscribed + published three ways per pass —
// a bare core::IndexEpochManager (WAL off), a
// storage::DurableSubscriptionStore at fsync=never (WAL framing +
// page-cache writes, no fsync), and one at fsync=always (an fsync per
// record) — interleaved A/B/C so frequency scaling and cache warmth
// hit every side equally, best-of estimator on each. A separate
// cold-recovery phase builds a store of XPRED_BENCH_RECOVERY_SUBS
// subscriptions and times two reopens: pure-WAL replay (no snapshot)
// and snapshot-seeded (checkpointed first). When
// XPRED_BENCH_METRICS_DIR is set it writes a JSON sidecar
// (durability.json) whose schema is enforced by
// scripts/check_bench_schema.py, including the < 15% fsync=never
// overhead gate in Release builds on >= 4-CPU hosts.
//
// Reported:
//   baseline_subs_per_sec     — bare manager, no WAL,
//   wal_never_subs_per_sec    — WAL on, fsync=never,
//   wal_always_subs_per_sec   — WAL on, fsync per record,
//   overhead_fraction_never   — 1 - never/baseline (the gated one),
//   overhead_fraction_always  — 1 - always/baseline,
//   recovery_wal_millis       — cold open replaying the whole WAL,
//   recovery_snapshot_millis  — cold open seeded by a checkpoint.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/stopwatch.h"
#include "core/epoch_manager.h"
#include "storage/durable_store.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"

#ifndef XPRED_BUILD_TYPE
#define XPRED_BUILD_TYPE "unknown"
#endif

namespace xpred::bench {
namespace {

size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

/// Fresh per-run scratch root under the system temp dir. Determinism
/// of the bench numbers does not depend on the path; the PID keeps
/// concurrent invocations apart.
std::filesystem::path ScratchRoot() {
  return std::filesystem::temp_directory_path() /
         ("xpred-bench-durability-" + std::to_string(::getpid()));
}

/// Subscribes every expression into the bare manager, publishing an
/// epoch every \p publish_every ops; returns subscribes/sec.
double TimedBarePass(const std::vector<std::string>& exprs,
                     size_t partitions, size_t publish_every) {
  core::IndexEpochManager::Options mopts;
  mopts.partitions = partitions;
  core::IndexEpochManager manager(mopts);
  Stopwatch watch;
  size_t since_publish = 0;
  for (const std::string& expr : exprs) {
    if (!manager.Subscribe(expr).ok()) std::abort();
    if (++since_publish >= publish_every) {
      since_publish = 0;
      if (!manager.Publish().ok()) std::abort();
    }
  }
  if (!manager.Publish().ok()) std::abort();
  double ms = watch.ElapsedMillis();
  return 1000.0 * static_cast<double>(exprs.size()) / ms;
}

/// Same workload through a durable store at \p fsync; the store
/// directory is created fresh and removed afterwards so every pass
/// starts from an empty WAL.
double TimedDurablePass(const std::vector<std::string>& exprs,
                        size_t partitions, size_t publish_every,
                        storage::FsyncPolicy fsync,
                        const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  storage::DurableSubscriptionStore::Options options;
  options.directory = dir.string();
  options.fsync = fsync;
  options.partitions = partitions;
  auto store = storage::DurableSubscriptionStore::Open(options);
  if (!store.ok()) {
    std::fprintf(stderr, "open %s: %s\n", dir.string().c_str(),
                 store.status().ToString().c_str());
    std::exit(1);
  }
  Stopwatch watch;
  size_t since_publish = 0;
  for (const std::string& expr : exprs) {
    if (!(*store)->Subscribe(expr).ok()) std::abort();
    if (++since_publish >= publish_every) {
      since_publish = 0;
      if (!(*store)->Publish().ok()) std::abort();
    }
  }
  if (!(*store)->Publish().ok()) std::abort();
  double ms = watch.ElapsedMillis();
  store->reset();  // Close before the directory goes away.
  std::filesystem::remove_all(dir, ec);
  return 1000.0 * static_cast<double>(exprs.size()) / ms;
}

int Main() {
  const size_t num_subs = EnvCount("XPRED_BENCH_EXPRS", 2000);
  const size_t passes = EnvCount("XPRED_BENCH_PASSES", 3);
  const size_t partitions = EnvCount("XPRED_BENCH_PARTITIONS", 2);
  const size_t publish_every = EnvCount("XPRED_BENCH_PUBLISH_EVERY", 64);
  const size_t recovery_subs =
      EnvCount("XPRED_BENCH_RECOVERY_SUBS", 100000);

  const xml::Dtd& dtd = xml::NitfLikeDtd();
  xpath::QueryGenerator::Options qopts;
  qopts.max_length = 6;
  qopts.min_length = 3;
  qopts.filters_per_expr = 1;
  std::vector<std::string> exprs =
      xpath::QueryGenerator(&dtd, qopts).GenerateWorkloadStrings(
          std::max(num_subs, recovery_subs), 42);
  std::vector<std::string> subs(exprs.begin(),
                                exprs.begin() +
                                    static_cast<ptrdiff_t>(num_subs));

  const std::filesystem::path root = ScratchRoot();
  std::error_code ec;
  std::filesystem::create_directories(root, ec);

  // Interleaved A/B/C passes, best-of on each side: the identical
  // subscribe+publish loop differs only in what sits behind OpSink.
  double baseline_sps = 0;
  double never_sps = 0;
  double always_sps = 0;
  for (size_t pass = 0; pass < passes; ++pass) {
    baseline_sps = std::max(
        baseline_sps, TimedBarePass(subs, partitions, publish_every));
    never_sps = std::max(
        never_sps,
        TimedDurablePass(subs, partitions, publish_every,
                         storage::FsyncPolicy::kNever, root / "never"));
    always_sps = std::max(
        always_sps,
        TimedDurablePass(subs, partitions, publish_every,
                         storage::FsyncPolicy::kAlways, root / "always"));
  }
  const double overhead_never = 1.0 - never_sps / baseline_sps;
  const double overhead_always = 1.0 - always_sps / baseline_sps;

  // Cold recovery: build once at fsync=never, then time two reopens —
  // replaying the whole WAL, and seeded by a checkpoint.
  const std::filesystem::path cold = root / "cold";
  std::filesystem::remove_all(cold, ec);
  uint64_t recovery_issued = 0;
  {
    storage::DurableSubscriptionStore::Options options;
    options.directory = cold.string();
    options.fsync = storage::FsyncPolicy::kNever;
    options.partitions = partitions;
    auto store = storage::DurableSubscriptionStore::Open(options);
    if (!store.ok()) std::abort();
    size_t since_publish = 0;
    for (size_t i = 0; i < recovery_subs; ++i) {
      if ((*store)->Subscribe(exprs[i]).ok()) ++recovery_issued;
      if (++since_publish >= 512) {
        since_publish = 0;
        if (!(*store)->Publish().ok()) std::abort();
      }
    }
    if (!(*store)->Publish().ok()) std::abort();
  }
  storage::DurableSubscriptionStore::Options ropts;
  ropts.directory = cold.string();
  ropts.partitions = partitions;
  double recovery_wal_ms = 0;
  uint64_t recovery_records = 0;
  {
    Stopwatch watch;
    auto store = storage::DurableSubscriptionStore::Open(ropts);
    recovery_wal_ms = watch.ElapsedMillis();
    if (!store.ok()) std::abort();
    recovery_records = (*store)->recovery_report().wal_records_replayed;
    if (!(*store)->Checkpoint().ok()) std::abort();
  }
  double recovery_snapshot_ms = 0;
  uint64_t recovery_snapshot_entries = 0;
  {
    Stopwatch watch;
    auto store = storage::DurableSubscriptionStore::Open(ropts);
    recovery_snapshot_ms = watch.ElapsedMillis();
    if (!store.ok()) std::abort();
    const storage::RecoveryReport& report = (*store)->recovery_report();
    if (!report.snapshot_loaded) std::abort();
    recovery_snapshot_entries = report.snapshot_entries;
    if (report.live_subscriptions != recovery_issued) std::abort();
  }
  std::filesystem::remove_all(root, ec);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("durability: %zu subs, %zu passes, partitions=%zu, "
              "publish_every=%zu, recovery_subs=%zu, hw_concurrency=%u, "
              "build=%s\n",
              num_subs, passes, partitions, publish_every, recovery_subs,
              hw, XPRED_BUILD_TYPE);
  std::printf("  wal off:      %.0f subscribes/sec\n", baseline_sps);
  std::printf("  fsync=never:  %.0f subscribes/sec (%.2f%% overhead)\n",
              never_sps, 100.0 * overhead_never);
  std::printf("  fsync=always: %.0f subscribes/sec (%.2f%% overhead)\n",
              always_sps, 100.0 * overhead_always);
  std::printf("  cold recovery (%llu subscriptions): %.1f ms from the "
              "WAL (%llu records), %.1f ms from a snapshot (%llu "
              "entries)\n",
              static_cast<unsigned long long>(recovery_issued),
              recovery_wal_ms,
              static_cast<unsigned long long>(recovery_records),
              recovery_snapshot_ms,
              static_cast<unsigned long long>(recovery_snapshot_entries));

  if (recovery_records == 0) {
    std::fprintf(stderr, "cold recovery replayed no WAL records — the "
                 "replay path is not exercised\n");
    return 1;
  }

  const char* dir = std::getenv("XPRED_BENCH_METRICS_DIR");
  if (dir != nullptr) {
    std::filesystem::create_directories(dir, ec);
    std::string path = std::string(dir) + "/durability.json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    out.precision(17);  // Round-trippable doubles: the checker
                        // recomputes the overhead fractions from the
                        // throughputs and compares.
    out << "{\n"
        << "  \"bench\": \"durability\",\n"
        << "  \"build_type\": \"" << XPRED_BUILD_TYPE << "\",\n"
        << "  \"hardware_concurrency\": " << hw << ",\n"
        << "  \"subscriptions\": " << num_subs << ",\n"
        << "  \"passes\": " << passes << ",\n"
        << "  \"partitions\": " << partitions << ",\n"
        << "  \"publish_every\": " << publish_every << ",\n"
        << "  \"baseline_subs_per_sec\": " << baseline_sps << ",\n"
        << "  \"wal_never_subs_per_sec\": " << never_sps << ",\n"
        << "  \"wal_always_subs_per_sec\": " << always_sps << ",\n"
        << "  \"overhead_fraction_never\": " << overhead_never << ",\n"
        << "  \"overhead_fraction_always\": " << overhead_always << ",\n"
        << "  \"recovery_subscriptions\": " << recovery_issued << ",\n"
        << "  \"recovery_records_replayed\": " << recovery_records
        << ",\n"
        << "  \"recovery_wal_millis\": " << recovery_wal_ms << ",\n"
        << "  \"recovery_snapshot_entries\": " << recovery_snapshot_entries
        << ",\n"
        << "  \"recovery_snapshot_millis\": " << recovery_snapshot_ms
        << "\n"
        << "}\n";
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace xpred::bench

int main() { return xpred::bench::Main(); }
