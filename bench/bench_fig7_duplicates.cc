// Figure 7: workloads including non-distinct (duplicate) expressions.
//
// Paper setup: D=false, 0.5M-5M expressions (PSD plotted; NITF
// described as similar to the distinct experiment), other parameters as
// in Figure 6. Duplicate expressions model shared user interests; all
// engines deduplicate internally, so the distinct population saturates
// (paper: 5,500-10,000 distinct for PSD) and scaling stays linear and
// shallow. Expected shape: ours slightly better than YFilter on NITF,
// and better by more than half YFilter's time on PSD at the largest
// sizes; Index-Filter worst.
//
// Default scale runs 1/10th of the paper's counts; XPRED_BENCH_SCALE=10
// restores them.

#include "bench_util.h"

namespace xpred::bench {
namespace {

const char* const kEngines[] = {"basic", "basic-pc", "basic-pc-ap",
                                "yfilter", "index-filter"};
const size_t kPaperSizes[] = {500000, 1000000, 2000000, 3500000, 5000000};

void BM_Fig7Duplicates(benchmark::State& state) {
  WorkloadSpec spec;
  spec.psd = (state.range(2) == 1);
  spec.distinct = false;
  spec.expressions = Scaled(kPaperSizes[state.range(1)]) / 10;
  spec.max_length = 6;
  spec.wildcard = 0.2;
  spec.descendant = 0.2;
  RunFilterBenchmark(state, kEngines[state.range(0)], spec);
}

void RegisterAll() {
  for (long dtd = 0; dtd <= 1; ++dtd) {
    for (size_t e = 0; e < std::size(kEngines); ++e) {
      for (size_t s = 0; s < std::size(kPaperSizes); ++s) {
        std::string name = std::string("Fig7/") +
                           (dtd == 1 ? "psd/" : "nitf/") + kEngines[e] +
                           "/" + std::to_string(Scaled(kPaperSizes[s]) / 10);
        benchmark::RegisterBenchmark(name.c_str(), BM_Fig7Duplicates)
            ->Args({static_cast<long>(e), static_cast<long>(s), dtd})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(2);
      }
    }
  }
}

const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace xpred::bench

BENCHMARK_MAIN();
