// Expression-insertion cost. The paper (§6.1) excludes insertion from
// the filter-time metric but notes: "in our approach, all insertion
// operations are constant time and the number of predicates encoding
// an XPE is linear in the number of location steps". This bench
// demonstrates that constructively: per-expression insertion time must
// stay flat as the engine grows, for every engine family.

#include "bench_util.h"

namespace xpred::bench {
namespace {

const char* const kEngines[] = {"basic-pc-ap", "xfilter", "yfilter",
                                "index-filter"};

void BM_Insertion(benchmark::State& state) {
  // Pre-generate a large pool of expressions; each iteration builds a
  // fresh engine and inserts `n` of them, so the reported time is the
  // total insertion cost at that size (linear total = constant
  // per-expression).
  WorkloadSpec spec;
  spec.psd = false;
  spec.distinct = false;
  spec.expressions = static_cast<size_t>(state.range(1));
  spec.min_length = 3;
  const Workload& workload = GetWorkload(spec);

  size_t inserted = 0;
  size_t memory_bytes = 0;
  for (auto _ : state) {
    std::unique_ptr<core::FilterEngine> engine =
        MakeEngine(kEngines[state.range(0)]);
    for (const std::string& expr : workload.expressions) {
      Result<core::ExprId> id = engine->AddExpression(expr);
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
      ++inserted;
    }
    benchmark::DoNotOptimize(engine->subscription_count());
    memory_bytes = engine->ApproximateMemoryBytes();
  }
  state.counters["us_per_insert"] = benchmark::Counter(
      static_cast<double>(workload.expressions.size()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
  state.counters["expressions"] =
      static_cast<double>(workload.expressions.size());
  state.counters["bytes_per_sub"] =
      static_cast<double>(memory_bytes) /
      static_cast<double>(workload.expressions.size());
}

void RegisterAll() {
  for (size_t e = 0; e < std::size(kEngines); ++e) {
    for (long n : {10000L, 50000L, 100000L}) {
      std::string name = std::string("Insertion/") + kEngines[e] + "/" +
                         std::to_string(n);
      benchmark::RegisterBenchmark(name.c_str(), BM_Insertion)
          ->Args({static_cast<long>(e), n})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace xpred::bench

BENCHMARK_MAIN();
