// §6.5 parsing-cost claim: "The average parsing time for NITF and PSD
// XML documents is only 314 and 355 microseconds" — negligible against
// total filtering time.
//
// Measures (a) SAX parsing of the serialized documents, (b) path
// extraction, and (c) publication encoding, per document, on both
// corpora.

#include "core/publication.h"
#include "bench_util.h"
#include "xml/path.h"

namespace xpred::bench {
namespace {

std::vector<std::string> SerializedCorpus(bool psd) {
  WorkloadSpec spec;
  spec.psd = psd;
  spec.expressions = 10;  // Irrelevant; we only need the documents.
  const Workload& workload = GetWorkload(spec);
  std::vector<std::string> xml;
  for (const xml::Document& doc : workload.documents) {
    xml.push_back(doc.ToXml());
  }
  return xml;
}

void BM_SaxParse(benchmark::State& state) {
  std::vector<std::string> corpus = SerializedCorpus(state.range(0) == 1);
  size_t bytes = 0;
  size_t tags = 0;
  size_t docs = 0;
  Stopwatch wall;
  double elapsed_us = 0;
  for (auto _ : state) {
    wall.Reset();
    for (const std::string& text : corpus) {
      Result<xml::Document> doc = xml::Document::Parse(text);
      if (!doc.ok()) {
        state.SkipWithError(doc.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(doc->size());
      bytes += text.size();
      tags += doc->size();
      ++docs;
    }
    elapsed_us += wall.ElapsedMicros();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.counters["avg_tags"] =
      static_cast<double>(tags) / static_cast<double>(docs);
  state.counters["us_per_doc"] = elapsed_us / static_cast<double>(docs);
}

void BM_ParseExtractEncode(benchmark::State& state) {
  // Full document-side pipeline: parse + path extraction + publication
  // encoding (what the paper charges to "parsing the XML document ...
  // includes the time to generate the encodings").
  std::vector<std::string> corpus = SerializedCorpus(state.range(0) == 1);
  Interner interner;
  // A realistic expression-side vocabulary so tags resolve.
  const xml::Dtd& dtd =
      (state.range(0) == 1) ? xml::PsdLikeDtd() : xml::NitfLikeDtd();
  for (const xml::ElementDecl& decl : dtd.elements()) {
    interner.Intern(decl.name);
  }
  size_t docs = 0;
  Stopwatch wall;
  double elapsed_us = 0;
  for (auto _ : state) {
    wall.Reset();
    for (const std::string& text : corpus) {
      Result<xml::Document> doc = xml::Document::Parse(text);
      if (!doc.ok()) {
        state.SkipWithError(doc.status().ToString().c_str());
        return;
      }
      size_t tuples = 0;
      for (const xml::DocumentPath& path : xml::ExtractPaths(*doc)) {
        core::Publication pub(path, interner);
        tuples += pub.length();
      }
      benchmark::DoNotOptimize(tuples);
      ++docs;
    }
    elapsed_us += wall.ElapsedMicros();
  }
  state.counters["us_per_doc"] = elapsed_us / static_cast<double>(docs);
}

void RegisterAll() {
  for (long dtd = 0; dtd <= 1; ++dtd) {
    std::string suffix = (dtd == 1) ? "psd" : "nitf";
    benchmark::RegisterBenchmark(("Parsing/sax/" + suffix).c_str(),
                                 BM_SaxParse)
        ->Args({dtd})
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("Parsing/parse_extract_encode/" + suffix).c_str(),
        BM_ParseExtractEncode)
        ->Args({dtd})
        ->Unit(benchmark::kMicrosecond);
  }
}

const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace xpred::bench

BENCHMARK_MAIN();
