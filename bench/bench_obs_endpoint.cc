// Introspection-plane overhead benchmark: what does a live Prometheus
// scraper cost the batch filtering hot path?
//
// Plain-main binary (no google-benchmark harness): it runs the same
// workload through an exec::ParallelFilter twice per pass — once with
// the introspection server idle (no scraper attached, no snapshot
// publication) and once with a 10 Hz scraper thread hammering
// GET /metrics while the filter loop publishes snapshots through the
// IntrospectionHub — interleaving A/B rounds so frequency scaling and
// cache warmth hit both sides equally. Because handlers serve
// immutable published snapshots and never touch engine state
// (DESIGN.md §17), the scrape-attached side should track the baseline
// closely; when XPRED_BENCH_METRICS_DIR is set it writes a JSON
// sidecar (obs_endpoint.json) whose schema is enforced by
// scripts/check_bench_schema.py, including the < 3% overhead gate in
// Release builds on >= 4-CPU hosts.
//
// Reported:
//   baseline_docs_per_sec — FilterBatch throughput, scraper detached,
//   scraped_docs_per_sec  — with the 10 Hz scraper attached,
//   overhead_fraction     — 1 - scraped/baseline (negative = noise),
//   scrapes_completed     — successful /metrics fetches while timed.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "exec/parallel_filter.h"
#include "net/http_client.h"
#include "obs/introspection_server.h"
#include "obs/metrics.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"

#ifndef XPRED_BUILD_TYPE
#define XPRED_BUILD_TYPE "unknown"
#endif

namespace xpred::bench {
namespace {

constexpr int kScrapeHz = 10;

size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

/// One timed pass of the corpus through \p filter; returns docs/sec.
/// With \p hub set, the pass publishes a metrics snapshot afterwards —
/// the owner-thread cost an instrumented filter loop actually pays.
double TimedPass(xpred::exec::ParallelFilter& filter,
                 const std::vector<xpred::exec::DocRef>& docs,
                 obs::IntrospectionHub* hub,
                 const obs::MetricsRegistry* registry) {
  xpred::exec::CollectingResultSink sink;
  Stopwatch watch;
  Status st = filter.FilterBatch(docs, sink);
  if (hub != nullptr) hub->MaybePublishMetrics(*registry);
  double ms = watch.ElapsedMillis();
  if (!st.ok()) {
    std::fprintf(stderr, "FilterBatch failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return 1000.0 * static_cast<double>(docs.size()) / ms;
}

int Main() {
  const size_t num_exprs = EnvCount("XPRED_BENCH_EXPRS", 2000);
  const size_t num_docs = EnvCount("XPRED_BENCH_DOCS", 60);
  const size_t passes = EnvCount("XPRED_BENCH_PASSES", 5);
  const size_t threads = EnvCount("XPRED_BENCH_THREADS", 4);
  const size_t partitions = EnvCount("XPRED_BENCH_PARTITIONS", 2);

  const xml::Dtd& dtd = xml::NitfLikeDtd();
  xpath::QueryGenerator::Options qopts;
  qopts.max_length = 6;
  qopts.min_length = 3;
  qopts.filters_per_expr = 1;
  std::vector<std::string> exprs =
      xpath::QueryGenerator(&dtd, qopts).GenerateWorkloadStrings(num_exprs,
                                                                 42);
  xml::DocumentGenerator::Options dopts;
  dopts.max_depth = 8;
  dopts.optional_prob = 0.8;
  dopts.repeat_prob = 0.6;
  dopts.max_repeats = 8;
  xml::DocumentGenerator dgen(&dtd, dopts);
  std::vector<xml::Document> documents;
  documents.reserve(num_docs);
  for (size_t d = 0; d < num_docs; ++d) {
    documents.push_back(dgen.Generate(42 * 7919 + d));
  }
  std::vector<xpred::exec::DocRef> refs;
  for (const xml::Document& doc : documents) refs.push_back({&doc});

  xpred::exec::ParallelFilter::Options options;
  options.threads = threads;
  options.partitions = partitions;
  xpred::exec::ParallelFilter filter(options);
  obs::MetricsRegistry registry;
  filter.BindMetrics(&registry);
  for (const std::string& e : exprs) {
    if (!filter.AddExpression(e).ok()) std::abort();
  }

  // The introspection plane stays up for the whole run; only the
  // scraper thread's activity differs between the A and B sides.
  obs::IntrospectionHub hub;
  hub.PublishMetrics(registry);
  obs::IntrospectionServer server(&hub, {});
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "introspection server: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> scrape_active{false};
  std::atomic<uint64_t> scrapes{0};
  std::atomic<uint64_t> scrape_failures{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (scrape_active.load(std::memory_order_acquire)) {
        Result<net::FetchResult> result = net::HttpGet(
            "127.0.0.1", server.port(), "/metrics", /*timeout_ms=*/2000);
        if (result.ok() && result->status == 200 &&
            !result->body.empty()) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        } else {
          scrape_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(1000 / kScrapeHz));
    }
  });

  {  // Warmup both sides: pins pooled scratch allocations.
    xpred::exec::CollectingResultSink sink;
    (void)filter.FilterBatch(refs, sink);
    (void)filter.FilterBatch(refs, sink);
  }

  // Interleave A/B passes; best-of estimator on each side. The same
  // filter and the same running server serve both sides — only the
  // scraper's activity and the snapshot publication differ.
  double baseline_dps = 0;
  double scraped_dps = 0;
  for (size_t pass = 0; pass < passes; ++pass) {
    scrape_active.store(false, std::memory_order_release);
    baseline_dps =
        std::max(baseline_dps, TimedPass(filter, refs, nullptr, nullptr));
    scrape_active.store(true, std::memory_order_release);
    scraped_dps =
        std::max(scraped_dps, TimedPass(filter, refs, &hub, &registry));
  }
  scrape_active.store(false, std::memory_order_release);

  // Ensure at least one real scrape landed even on a host so fast the
  // timed passes fit between two 10 Hz ticks.
  while (scrapes.load(std::memory_order_relaxed) == 0 &&
         scrape_failures.load(std::memory_order_relaxed) < 10) {
    scrape_active.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    scrape_active.store(false, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  scraper.join();
  server.Stop();

  const double overhead = 1.0 - scraped_dps / baseline_dps;
  const uint64_t completed = scrapes.load(std::memory_order_relaxed);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("obs_endpoint: %zu exprs, %zu docs, %zu passes, "
              "threads=%zu, partitions=%zu, hw_concurrency=%u, build=%s\n",
              num_exprs, num_docs, passes, threads, partitions, hw,
              XPRED_BUILD_TYPE);
  std::printf("  baseline: %.1f docs/sec (scraper detached)\n",
              baseline_dps);
  std::printf("  scraped:  %.1f docs/sec (%llu scrapes at %d Hz)\n",
              scraped_dps, static_cast<unsigned long long>(completed),
              kScrapeHz);
  std::printf("  overhead: %.2f%%\n", 100.0 * overhead);

  if (completed == 0) {
    std::fprintf(stderr, "no /metrics scrape completed — the serving "
                 "path is not exercised\n");
    return 1;
  }

  const char* dir = std::getenv("XPRED_BENCH_METRICS_DIR");
  if (dir != nullptr) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::string path = std::string(dir) + "/obs_endpoint.json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    out.precision(17);  // Round-trippable doubles: the checker
                        // recomputes overhead_fraction from the
                        // throughputs and compares.
    out << "{\n"
        << "  \"bench\": \"obs_endpoint\",\n"
        << "  \"build_type\": \"" << XPRED_BUILD_TYPE << "\",\n"
        << "  \"hardware_concurrency\": " << hw << ",\n"
        << "  \"expressions\": " << num_exprs << ",\n"
        << "  \"documents\": " << num_docs << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"partitions\": " << partitions << ",\n"
        << "  \"scrape_hz\": " << kScrapeHz << ",\n"
        << "  \"scrapes_completed\": " << completed << ",\n"
        << "  \"baseline_docs_per_sec\": " << baseline_dps << ",\n"
        << "  \"scraped_docs_per_sec\": " << scraped_dps << ",\n"
        << "  \"overhead_fraction\": " << overhead << "\n"
        << "}\n";
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace xpred::bench

int main() { return xpred::bench::Main(); }
