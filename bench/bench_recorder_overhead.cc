// Flight-recorder overhead benchmark: how much does the always-on
// event journal cost on the batch filtering hot path?
//
// Plain-main binary (no google-benchmark harness): it runs the same
// workload through an exec::ParallelFilter twice per pass — once with
// no recorder installed (XPRED_RECORD_EVENT is a single null-test
// branch, the same cost profile as compiling the recorder out) and
// once with a FlightRecorder installed so every instrumentation point
// actually journals — interleaving A/B rounds so frequency scaling
// and cache warmth hit both sides equally. When
// XPRED_BENCH_METRICS_DIR is set it writes a JSON sidecar
// (recorder_overhead.json) whose schema is enforced by
// scripts/check_bench_schema.py, including the < 3% overhead gate in
// Release builds.
//
// Reported:
//   baseline_docs_per_sec — FilterBatch throughput, recorder absent,
//   recorded_docs_per_sec — with an installed recorder journaling,
//   overhead_fraction     — 1 - recorded/baseline (negative = noise),
//   recorded_events       — events journaled (drained + overwritten).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "exec/parallel_filter.h"
#include "obs/flight_recorder.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"

#ifndef XPRED_BUILD_TYPE
#define XPRED_BUILD_TYPE "unknown"
#endif

namespace xpred::bench {
namespace {

size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

/// One timed pass of the corpus through \p filter; returns docs/sec.
double TimedPass(xpred::exec::ParallelFilter& filter,
                 const std::vector<xpred::exec::DocRef>& docs) {
  xpred::exec::CollectingResultSink sink;
  Stopwatch watch;
  Status st = filter.FilterBatch(docs, sink);
  double ms = watch.ElapsedMillis();
  if (!st.ok()) {
    std::fprintf(stderr, "FilterBatch failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return 1000.0 * static_cast<double>(docs.size()) / ms;
}

int Main() {
  const size_t num_exprs = EnvCount("XPRED_BENCH_EXPRS", 2000);
  const size_t num_docs = EnvCount("XPRED_BENCH_DOCS", 60);
  const size_t passes = EnvCount("XPRED_BENCH_PASSES", 5);
  const size_t threads = EnvCount("XPRED_BENCH_THREADS", 4);
  const size_t partitions = EnvCount("XPRED_BENCH_PARTITIONS", 2);

  const xml::Dtd& dtd = xml::NitfLikeDtd();
  xpath::QueryGenerator::Options qopts;
  qopts.max_length = 6;
  qopts.min_length = 3;
  qopts.filters_per_expr = 1;
  std::vector<std::string> exprs =
      xpath::QueryGenerator(&dtd, qopts).GenerateWorkloadStrings(num_exprs,
                                                                 42);
  xml::DocumentGenerator::Options dopts;
  dopts.max_depth = 8;
  dopts.optional_prob = 0.8;
  dopts.repeat_prob = 0.6;
  dopts.max_repeats = 8;
  xml::DocumentGenerator dgen(&dtd, dopts);
  std::vector<xml::Document> documents;
  documents.reserve(num_docs);
  for (size_t d = 0; d < num_docs; ++d) {
    documents.push_back(dgen.Generate(42 * 7919 + d));
  }
  std::vector<xpred::exec::DocRef> refs;
  for (const xml::Document& doc : documents) refs.push_back({&doc});

  xpred::exec::ParallelFilter::Options options;
  options.threads = threads;
  options.partitions = partitions;
  xpred::exec::ParallelFilter filter(options);
  for (const std::string& e : exprs) {
    if (!filter.AddExpression(e).ok()) std::abort();
  }

  obs::FlightRecorder::Options ropts;
  ropts.max_threads = threads + 2;
  obs::FlightRecorder recorder(ropts);

  {  // Warmup both sides: pins pooled scratch allocations.
    xpred::exec::CollectingResultSink sink;
    (void)filter.FilterBatch(refs, sink);
    obs::FlightRecorder::Install(&recorder);
    (void)filter.FilterBatch(refs, sink);
    obs::FlightRecorder::Install(nullptr);
    (void)recorder.Drain();
  }

  // Interleave A/B passes; best-of estimator on each side. The same
  // filter serves both sides so index layout and scratch pools are
  // identical — only the installed recorder differs.
  double baseline_dps = 0;
  double recorded_dps = 0;
  uint64_t recorded_events = 0;
  for (size_t pass = 0; pass < passes; ++pass) {
    obs::FlightRecorder::Install(nullptr);
    baseline_dps = std::max(baseline_dps, TimedPass(filter, refs));
    obs::FlightRecorder::Install(&recorder);
    recorded_dps = std::max(recorded_dps, TimedPass(filter, refs));
    obs::FlightRecorder::Install(nullptr);
    obs::FlightRecorder::Snapshot snapshot = recorder.Drain();
    recorded_events += snapshot.events.size() + snapshot.dropped;
  }
  const double overhead = 1.0 - recorded_dps / baseline_dps;

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("recorder_overhead: %zu exprs, %zu docs, %zu passes, "
              "threads=%zu, partitions=%zu, hw_concurrency=%u, build=%s\n",
              num_exprs, num_docs, passes, threads, partitions, hw,
              XPRED_BUILD_TYPE);
  std::printf("  baseline: %.1f docs/sec\n", baseline_dps);
  std::printf("  recorded: %.1f docs/sec (%llu events journaled)\n",
              recorded_dps,
              static_cast<unsigned long long>(recorded_events));
  std::printf("  overhead: %.2f%%\n", 100.0 * overhead);

  if (recorded_events == 0) {
    std::fprintf(stderr, "recorder journaled no events — the recording "
                 "path is not exercised\n");
    return 1;
  }

  const char* dir = std::getenv("XPRED_BENCH_METRICS_DIR");
  if (dir != nullptr) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::string path = std::string(dir) + "/recorder_overhead.json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    out.precision(17);  // Round-trippable doubles: the checker
                        // recomputes overhead_fraction from the
                        // throughputs and compares.
    out << "{\n"
        << "  \"bench\": \"recorder_overhead\",\n"
        << "  \"build_type\": \"" << XPRED_BUILD_TYPE << "\",\n"
        << "  \"hardware_concurrency\": " << hw << ",\n"
        << "  \"expressions\": " << num_exprs << ",\n"
        << "  \"documents\": " << num_docs << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"partitions\": " << partitions << ",\n"
        << "  \"events_per_thread\": " << recorder.events_per_thread()
        << ",\n"
        << "  \"recorded_events\": " << recorded_events << ",\n"
        << "  \"baseline_docs_per_sec\": " << baseline_dps << ",\n"
        << "  \"recorded_docs_per_sec\": " << recorded_dps << ",\n"
        << "  \"overhead_fraction\": " << overhead << "\n"
        << "}\n";
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace xpred::bench

int main() { return xpred::bench::Main(); }
