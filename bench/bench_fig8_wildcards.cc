// Figure 8: effect of the wildcard probability W (and, as described in
// §6.3, the descendant-operator probability DO) on matching time.
//
// Paper setup: NITF, 2M expressions (duplicates allowed), DO=0.2 while
// W sweeps 0..0.9; then W=0.2 while DO sweeps 0..0.9. Expected shape
// for the predicate engine: time first rises with W (wildcards add new
// predicates with growing range values), peaks around W=0.3, then
// falls as expressions collapse into fewer distinct ones. YFilter
// degrades with W and does not recover at high W (wildcard transitions
// touch many NFA states). Index-Filter is only swept on DO, exactly as
// in the paper: the original paper does not treat wildcards, and with
// the all-element wildcard streams the enumeration "augments rapidly"
// (§6.3) beyond practical time at high W.

#include "bench_util.h"

namespace xpred::bench {
namespace {

const char* const kEngines[] = {"basic-pc-ap", "yfilter", "index-filter"};
const double kProbabilities[] = {0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9};

void BM_Fig8(benchmark::State& state) {
  WorkloadSpec spec;
  spec.psd = false;
  spec.distinct = false;  // Duplicate workload, as in §6.3.
  spec.expressions = Scaled(2000000) / 10;
  spec.max_length = 6;
  spec.min_length = 4;
  const bool sweep_wildcard = (state.range(2) == 0);
  if (sweep_wildcard) {
    spec.wildcard = kProbabilities[state.range(1)];
    spec.descendant = 0.2;
  } else {
    spec.wildcard = 0.2;
    spec.descendant = kProbabilities[state.range(1)];
  }
  RunFilterBenchmark(state, kEngines[state.range(0)], spec);
}

void RegisterAll() {
  for (long sweep = 0; sweep <= 1; ++sweep) {
    for (size_t e = 0; e < std::size(kEngines); ++e) {
      // Index-Filter is excluded from the W sweep (paper §6.3).
      if (sweep == 0 && std::string_view(kEngines[e]) == "index-filter") {
        continue;
      }
      for (size_t p = 0; p < std::size(kProbabilities); ++p) {
        std::string name =
            std::string("Fig8/") + (sweep == 0 ? "W" : "DO") + "/" +
            kEngines[e] + "/" +
            StringPrintf("%.1f", kProbabilities[p]);
        benchmark::RegisterBenchmark(name.c_str(), BM_Fig8)
            ->Args({static_cast<long>(e), static_cast<long>(p), sweep})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(2);
      }
    }
  }
}

const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace xpred::bench

BENCHMARK_MAIN();
