// Figure 6(b): PSD workload, distinct expressions.
//
// Paper setup: D=true, L=6, W=0.2, DO=0.2; 1,000-10,000 distinct XPEs;
// 500 documents. The PSD workload matches ~75% of expressions, which
// reverses the Figure 6(a) picture: the predicate-based algorithms beat
// YFilter significantly, prefix covering contributes strongly, and
// Index-Filter remains worst.

#include "bench_util.h"

namespace xpred::bench {
namespace {

// trie-dfs is not in the paper: it is this library's extension (one
// shared DFS over the predicate trie), included to show where it lands.
const char* const kEngines[] = {"basic",    "basic-pc",     "basic-pc-ap",
                                "trie-dfs", "xfilter",      "yfilter",
                                "index-filter"};
const size_t kPaperSizes[] = {1000, 2500, 5000, 7500, 10000};

void BM_Fig6bPsdDistinct(benchmark::State& state) {
  WorkloadSpec spec;
  spec.psd = true;
  spec.distinct = true;
  spec.expressions = Scaled(kPaperSizes[state.range(1)]);
  spec.max_length = 6;
  spec.wildcard = 0.2;
  spec.descendant = 0.2;
  RunFilterBenchmark(state, kEngines[state.range(0)], spec);
}

void RegisterAll() {
  for (size_t e = 0; e < std::size(kEngines); ++e) {
    for (size_t s = 0; s < std::size(kPaperSizes); ++s) {
      std::string name = std::string("Fig6b/") + kEngines[e] + "/" +
                         std::to_string(Scaled(kPaperSizes[s]));
      benchmark::RegisterBenchmark(name.c_str(), BM_Fig6bPsdDistinct)
          ->Args({static_cast<long>(e), static_cast<long>(s)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace xpred::bench

BENCHMARK_MAIN();
