// Figure 10: cost breakdown of the filtering time into predicate
// matching, expression matching (occurrence determination), and other
// computation (result collection), plus the distinct-predicate counts
// reported in §6.5.
//
// Paper setup: the duplicate-expression workload (1M-5M expressions),
// NITF plotted (PSD similar). Expected shape: expression matching
// dominates and grows with the workload; predicate matching rises much
// more slowly because the number of distinct predicates grows
// sublinearly (paper: 4019 ... 5843 distinct predicates between 1M and
// 5M expressions). Parsing time is reported by bench_parsing and is
// negligible (§6.5).

#include "bench_util.h"

namespace xpred::bench {
namespace {

const size_t kPaperSizes[] = {1000000, 2000000, 3000000, 4000000, 5000000};

void BM_Fig10Breakdown(benchmark::State& state) {
  WorkloadSpec spec;
  spec.psd = (state.range(1) == 1);
  spec.distinct = false;
  spec.expressions = Scaled(kPaperSizes[state.range(0)]) / 10;
  spec.max_length = 6;
  spec.min_length = spec.psd ? 3 : 4;

  core::FilterEngine& engine = GetLoadedEngine("basic-pc-ap", spec);
  auto* matcher = dynamic_cast<core::Matcher*>(&engine);
  const Workload& workload = GetWorkload(spec);

  matcher->ResetStats();
  obs::MetricsSnapshot before;
  if (MetricsSidecarDir() != nullptr) {
    before = engine.metrics_registry()->Snapshot();
  }
  std::vector<core::ExprId> matched;
  size_t docs = 0;
  for (auto _ : state) {
    for (const xml::Document& doc : workload.documents) {
      matched.clear();
      Status st = engine.FilterDocument(doc, &matched);
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(matched.data());
      ++docs;
    }
  }

  const core::EngineStats& stats = matcher->stats();
  double per_doc = 1.0 / (1000.0 * static_cast<double>(docs));
  state.counters["encode_ms_doc"] = stats.encode_micros * per_doc;
  state.counters["pred_ms_doc"] = stats.predicate_micros * per_doc;
  state.counters["expr_ms_doc"] = stats.expression_micros * per_doc;
  state.counters["other_ms_doc"] =
      (stats.collect_micros + stats.verify_micros) * per_doc;
  state.counters["distinct_preds"] =
      static_cast<double>(matcher->distinct_predicate_count());
  state.counters["distinct_exprs"] =
      static_cast<double>(matcher->distinct_expression_count());
  state.counters["expressions"] =
      static_cast<double>(engine.subscription_count());
  state.counters["occ_runs_doc"] =
      static_cast<double>(stats.occurrence_runs) /
      static_cast<double>(docs);
  if (MetricsSidecarDir() != nullptr) {
    WriteBenchMetricsSidecar(
        engine,
        std::string("Fig10/") + (spec.psd ? "psd/" : "nitf/") +
            std::to_string(spec.expressions),
        before);
  }
}

void RegisterAll() {
  for (long dtd = 0; dtd <= 1; ++dtd) {
    for (size_t s = 0; s < std::size(kPaperSizes); ++s) {
      std::string name = std::string("Fig10/") +
                         (dtd == 1 ? "psd/" : "nitf/") +
                         std::to_string(Scaled(kPaperSizes[s]) / 10);
      benchmark::RegisterBenchmark(name.c_str(), BM_Fig10Breakdown)
          ->Args({static_cast<long>(s), dtd})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace xpred::bench

BENCHMARK_MAIN();
