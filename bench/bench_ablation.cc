// Ablation benches for the design choices called out in DESIGN.md §6:
//
//  1. Expression organization: basic vs. prefix covering vs. access
//     predicates vs. the trie-DFS extension (one shared pass instead of
//     per-expression backtracking).
//  2. Covering evaluation order: longest-first (the paper's heuristic)
//     vs. shortest-first.
//  3. Predicate-index probe cost in isolation (insert + match of a
//     publication against a large predicate population).

#include "core/predicate_index.h"
#include "core/publication.h"
#include "bench_util.h"
#include "xml/path.h"
#include "xpath/parser.h"

namespace xpred::bench {
namespace {

// --- 1 & 2: engine-organization ablations ------------------------------------

const char* const kVariants[] = {
    "basic",
    "basic-pc",
    "basic-pc-ap",
    "basic-pc-ap-shortest",  // Covering order ablation.
    "basic-pc-ap-cc",        // Containment covering (paper future work).
    "trie-dfs",              // Our shared-DFS extension.
};

void BM_AblationOrganization(benchmark::State& state) {
  WorkloadSpec spec;
  spec.psd = (state.range(2) == 1);
  spec.distinct = true;
  spec.expressions = spec.psd ? Scaled(10000) : Scaled(50000);
  spec.min_length = spec.psd ? 3 : 4;
  RunFilterBenchmark(state, kVariants[state.range(0)], spec);
}

// --- 3: predicate index microbench --------------------------------------------

void BM_PredicateIndexMatch(benchmark::State& state) {
  // Populate the index from a large distinct workload, then measure
  // Match() alone on the corpus publications.
  WorkloadSpec spec;
  spec.psd = false;
  spec.distinct = true;
  spec.expressions = static_cast<size_t>(state.range(0));
  spec.min_length = 3;
  const Workload& workload = GetWorkload(spec);

  Interner interner;
  core::PredicateIndex index;
  for (const std::string& text : workload.expressions) {
    Result<xpath::PathExpr> expr = xpath::ParseXPath(text);
    if (!expr.ok()) continue;
    Result<core::EncodedExpression> enc = core::EncodeExpression(
        *expr, core::AttributeMode::kInline, &interner);
    if (!enc.ok()) continue;
    for (const core::Predicate& p : enc->predicates) {
      benchmark::DoNotOptimize(index.InsertOrFind(p));
    }
  }

  // Pre-extract publications.
  std::vector<core::Publication> publications;
  for (const xml::Document& doc : workload.documents) {
    for (const xml::DocumentPath& path : xml::ExtractPaths(doc)) {
      publications.emplace_back(path, interner);
    }
  }

  core::MatchResultSet results;
  size_t matches = 0;
  size_t paths = 0;
  Stopwatch wall;
  double elapsed_us = 0;
  for (auto _ : state) {
    wall.Reset();
    for (const core::Publication& pub : publications) {
      matches += index.Match(pub, &results);
      ++paths;
    }
    elapsed_us += wall.ElapsedMicros();
  }
  benchmark::DoNotOptimize(matches);
  state.counters["distinct_preds"] =
      static_cast<double>(index.distinct_count());
  state.counters["us_per_path"] = elapsed_us / static_cast<double>(paths);
}

// --- Occurrence determination: backtracking vs exhaustive scan -----------------

void BM_OccurrenceDetermination(benchmark::State& state) {
  // Worst-ish case: long chains with many pairs per predicate and one
  // threading chain.
  size_t chain_len = static_cast<size_t>(state.range(0));
  std::vector<core::OccList> results(chain_len);
  for (size_t i = 0; i < chain_len; ++i) {
    // Decoys that never chain plus one real link i -> i+1.
    for (uint32_t d = 0; d < 8; ++d) {
      results[i].push_back({100 + d, 200 + d});
    }
    results[i].push_back({static_cast<uint32_t>(i + 1),
                          static_cast<uint32_t>(i + 2)});
  }
  std::vector<const core::OccList*> views;
  for (const auto& r : results) views.push_back(&r);
  for (auto _ : state) {
    bool match = core::OccurrenceDeterminer::Determine(views);
    benchmark::DoNotOptimize(match);
  }
}

void RegisterAll() {
  for (long dtd = 0; dtd <= 1; ++dtd) {
    for (size_t v = 0; v < std::size(kVariants); ++v) {
      std::string name = std::string("Ablation/organization/") +
                         (dtd == 1 ? "psd/" : "nitf/") + kVariants[v];
      benchmark::RegisterBenchmark(name.c_str(), BM_AblationOrganization)
          ->Args({static_cast<long>(v), 0, dtd})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
  for (long n : {1000L, 10000L, 50000L}) {
    benchmark::RegisterBenchmark("Ablation/predicate_index_match",
                                 BM_PredicateIndexMatch)
        ->Arg(n)
        ->Unit(benchmark::kMicrosecond)
        ->Iterations(5);
  }
  for (long len : {2L, 4L, 8L}) {
    benchmark::RegisterBenchmark("Ablation/occurrence_determination",
                                 BM_OccurrenceDetermination)
        ->Arg(len)
        ->Unit(benchmark::kNanosecond);
  }
}

const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace xpred::bench

BENCHMARK_MAIN();
