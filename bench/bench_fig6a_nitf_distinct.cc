// Figure 6(a): NITF workload, distinct expressions.
//
// Paper setup: D=true, L=6, W=0.2, DO=0.2; 25,000-125,000 distinct
// XPEs; 500 documents; engines basic / basic-pc / basic-pc-ap /
// YFilter / Index-Filter. Expected shape: linear scaling for all;
// basic > basic-pc > basic-pc-ap; at this highly selective workload
// (~6% matches in the paper) YFilter is competitive with basic-pc-ap
// and overtakes it at the largest sizes; Index-Filter is worst (about
// twice YFilter).
//
// Workload sizes are multiplied by XPRED_BENCH_SCALE (default 1).

#include "bench_util.h"

namespace xpred::bench {
namespace {

// trie-dfs is not in the paper: it is this library's extension (one
// shared DFS over the predicate trie), included to show where it lands.
const char* const kEngines[] = {"basic",    "basic-pc",     "basic-pc-ap",
                                "trie-dfs", "xfilter",      "yfilter",
                                "index-filter"};
const size_t kPaperSizes[] = {25000, 50000, 75000, 100000, 125000};

void BM_Fig6aNitfDistinct(benchmark::State& state) {
  WorkloadSpec spec;
  spec.psd = false;
  spec.distinct = true;
  spec.expressions = Scaled(kPaperSizes[state.range(1)]);
  spec.max_length = 6;
  spec.min_length = 4;  // Longer queries -> the paper's ~6%-match regime.
  spec.wildcard = 0.2;
  spec.descendant = 0.2;
  RunFilterBenchmark(state, kEngines[state.range(0)], spec);
}

void RegisterAll() {
  for (size_t e = 0; e < std::size(kEngines); ++e) {
    for (size_t s = 0; s < std::size(kPaperSizes); ++s) {
      std::string name = std::string("Fig6a/") + kEngines[e] + "/" +
                         std::to_string(Scaled(kPaperSizes[s]));
      benchmark::RegisterBenchmark(name.c_str(), BM_Fig6aNitfDistinct)
          ->Args({static_cast<long>(e), static_cast<long>(s)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace xpred::bench

BENCHMARK_MAIN();
