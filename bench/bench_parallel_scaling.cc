// Thread-scaling benchmark for the parallel filtering pipeline.
//
// Plain-main binary (no google-benchmark harness): it runs a fixed
// matrix of thread counts over one workload, prints a table, and —
// when XPRED_BENCH_METRICS_DIR is set — writes a JSON sidecar
// (parallel_scaling.json) whose schema is enforced by
// scripts/check_bench_schema.py, including the >= 2.0x speedup gate at
// 4 threads in Release builds on machines with >= 4 CPUs.
//
// Reported per configuration:
//   docs_per_sec   — documents filtered per second (batch wall time),
//   speedup_vs_1t  — docs_per_sec relative to the 1-thread run,
//   p50_ms / p99_ms — per-batch-slice document latency percentiles.
// A serial core::Matcher runs first as the pre-parallel baseline; the
// 1-thread ParallelFilter must stay within a few percent of it (the
// "no regression when parallelism is off" acceptance bar).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "core/matcher.h"
#include "core/streaming.h"
#include "exec/parallel_filter.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"

#ifndef XPRED_BUILD_TYPE
#define XPRED_BUILD_TYPE "unknown"
#endif

namespace xpred::bench {
namespace {

size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

struct RunResult {
  size_t threads = 0;
  size_t partitions = 0;
  double docs_per_sec = 0;
  double speedup_vs_1t = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

double PercentileSorted(std::vector<double>* samples, double q) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(samples->size()));
  if (rank >= samples->size()) rank = samples->size() - 1;
  return (*samples)[rank];
}

/// Filters the corpus \p passes times through \p filter's batch API;
/// returns docs/sec of the best pass (least-noise estimator) and fills
/// per-pass latency percentiles.
double MeasureBatch(xpred::exec::ParallelFilter& filter,
                    const std::vector<xpred::exec::DocRef>& docs,
                    size_t passes, double* p50_ms, double* p99_ms) {
  double best = 0;
  std::vector<double> slice_ms;
  for (size_t pass = 0; pass < passes; ++pass) {
    xpred::exec::CollectingResultSink sink;
    Stopwatch watch;
    Status st = filter.FilterBatch(docs, sink);
    double ms = watch.ElapsedMillis();
    if (!st.ok()) {
      std::fprintf(stderr, "FilterBatch failed: %s\n",
                   st.ToString().c_str());
      std::exit(1);
    }
    slice_ms.push_back(ms / static_cast<double>(docs.size()));
    double dps = 1000.0 * static_cast<double>(docs.size()) / ms;
    best = std::max(best, dps);
  }
  *p50_ms = PercentileSorted(&slice_ms, 0.50);
  *p99_ms = PercentileSorted(&slice_ms, 0.99);
  return best;
}

int Main() {
  const size_t num_exprs = EnvCount("XPRED_BENCH_EXPRS", 2000);
  const size_t num_docs = EnvCount("XPRED_BENCH_DOCS", 60);
  const size_t passes = EnvCount("XPRED_BENCH_PASSES", 3);
  const size_t partitions = EnvCount("XPRED_BENCH_PARTITIONS", 1);

  const xml::Dtd& dtd = xml::NitfLikeDtd();
  xpath::QueryGenerator::Options qopts;
  qopts.max_length = 6;
  qopts.min_length = 3;
  qopts.filters_per_expr = 1;
  std::vector<std::string> exprs =
      xpath::QueryGenerator(&dtd, qopts).GenerateWorkloadStrings(num_exprs,
                                                                 42);
  xml::DocumentGenerator::Options dopts;
  dopts.max_depth = 8;
  dopts.optional_prob = 0.8;
  dopts.repeat_prob = 0.6;
  dopts.max_repeats = 8;
  xml::DocumentGenerator dgen(&dtd, dopts);
  std::vector<xml::Document> documents;
  documents.reserve(num_docs);
  for (size_t d = 0; d < num_docs; ++d) {
    documents.push_back(dgen.Generate(42 * 7919 + d));
  }
  std::vector<xpred::exec::DocRef> refs;
  for (const xml::Document& doc : documents) refs.push_back({&doc});

  // Pre-parallel baseline: the serial Matcher on the same corpus.
  double baseline_dps = 0;
  {
    core::Matcher matcher;
    for (const std::string& e : exprs) {
      if (!matcher.AddExpression(e).ok()) std::abort();
    }
    std::vector<core::ExprId> matched;
    for (const xml::Document& doc : documents) {  // Warmup pass.
      matched.clear();
      (void)matcher.FilterDocument(doc, &matched);
    }
    for (size_t pass = 0; pass < passes; ++pass) {
      Stopwatch watch;
      for (const xml::Document& doc : documents) {
        matched.clear();
        Status st = matcher.FilterDocument(doc, &matched);
        if (!st.ok()) std::abort();
      }
      double dps = 1000.0 * static_cast<double>(num_docs) /
                   watch.ElapsedMillis();
      baseline_dps = std::max(baseline_dps, dps);
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("parallel_scaling: %zu exprs, %zu docs, %zu passes, "
              "%zu partition(s), hw_concurrency=%u, build=%s\n",
              num_exprs, num_docs, passes, partitions, hw,
              XPRED_BUILD_TYPE);
  std::printf("  serial matcher baseline: %.1f docs/sec\n", baseline_dps);

  std::vector<RunResult> results;
  double one_thread_dps = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    xpred::exec::ParallelFilter::Options options;
    options.threads = threads;
    options.partitions = partitions;
    xpred::exec::ParallelFilter filter(options);
    for (const std::string& e : exprs) {
      if (!filter.AddExpression(e).ok()) std::abort();
    }
    {  // Warmup pass pins pooled scratch allocations.
      xpred::exec::CollectingResultSink sink;
      (void)filter.FilterBatch(refs, sink);
    }
    RunResult r;
    r.threads = threads;
    r.partitions = partitions;
    r.docs_per_sec =
        MeasureBatch(filter, refs, passes, &r.p50_ms, &r.p99_ms);
    if (threads == 1) one_thread_dps = r.docs_per_sec;
    r.speedup_vs_1t =
        one_thread_dps > 0 ? r.docs_per_sec / one_thread_dps : 0;
    results.push_back(r);
    std::printf("  threads=%zu: %.1f docs/sec, speedup %.2fx, "
                "p50 %.3f ms, p99 %.3f ms\n",
                r.threads, r.docs_per_sec, r.speedup_vs_1t, r.p50_ms,
                r.p99_ms);
  }

  const char* dir = std::getenv("XPRED_BENCH_METRICS_DIR");
  if (dir != nullptr) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::string path = std::string(dir) + "/parallel_scaling.json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    out << "{\n"
        << "  \"bench\": \"parallel_scaling\",\n"
        << "  \"build_type\": \"" << XPRED_BUILD_TYPE << "\",\n"
        << "  \"hardware_concurrency\": " << hw << ",\n"
        << "  \"expressions\": " << num_exprs << ",\n"
        << "  \"documents\": " << num_docs << ",\n"
        << "  \"partitions\": " << partitions << ",\n"
        << "  \"baseline_docs_per_sec\": " << baseline_dps << ",\n"
        << "  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      out << "    {\"threads\": " << r.threads
          << ", \"partitions\": " << r.partitions
          << ", \"docs_per_sec\": " << r.docs_per_sec
          << ", \"speedup_vs_1t\": " << r.speedup_vs_1t
          << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
          << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace xpred::bench

int main() { return xpred::bench::Main(); }
