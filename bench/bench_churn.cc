// Subscription-churn overhead benchmark: how much batch filtering
// throughput does a live, concurrently-churning subscription table
// cost versus a frozen one?
//
// Plain-main binary (no google-benchmark harness): one live
// exec::ParallelFilter over a core::IndexEpochManager runs the same
// document corpus twice per pass — once with the writer quiescent
// (the epoch pinned at batch start never changes) and once with a
// dedicated mutation thread subscribing/unsubscribing and publishing
// epochs as fast as TryPublish allows — interleaving A/B rounds so
// frequency scaling and cache warmth hit both sides equally. When
// XPRED_BENCH_METRICS_DIR is set it writes a JSON sidecar
// (churn.json) whose schema is enforced by
// scripts/check_bench_schema.py, including the < 10% degradation gate
// in Release builds on >= 4-CPU hosts.
//
// Reported:
//   baseline_docs_per_sec — FilterBatch throughput, writer quiescent,
//   churn_docs_per_sec    — with the mutation thread churning,
//   degradation_fraction  — 1 - churn/baseline (negative = noise),
//   subscribes_per_sec    — writer-side subscribe rate sustained
//                           while filtering ran,
//   epochs_published      — epochs landed during the churn windows.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "core/epoch_manager.h"
#include "exec/parallel_filter.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"

#ifndef XPRED_BUILD_TYPE
#define XPRED_BUILD_TYPE "unknown"
#endif

namespace xpred::bench {
namespace {

size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

/// One timed pass of the corpus through \p filter; returns docs/sec.
double TimedPass(xpred::exec::ParallelFilter& filter,
                 const std::vector<xpred::exec::DocRef>& docs) {
  xpred::exec::CollectingResultSink sink;
  Stopwatch watch;
  Status st = filter.FilterBatch(docs, sink);
  double ms = watch.ElapsedMillis();
  if (!st.ok()) {
    std::fprintf(stderr, "FilterBatch failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return 1000.0 * static_cast<double>(docs.size()) / ms;
}

int Main() {
  const size_t num_exprs = EnvCount("XPRED_BENCH_EXPRS", 2000);
  const size_t num_docs = EnvCount("XPRED_BENCH_DOCS", 60);
  const size_t passes = EnvCount("XPRED_BENCH_PASSES", 5);
  const size_t threads = EnvCount("XPRED_BENCH_THREADS", 4);
  const size_t partitions = EnvCount("XPRED_BENCH_PARTITIONS", 2);
  const size_t publish_every = EnvCount("XPRED_BENCH_PUBLISH_EVERY", 8);

  const xml::Dtd& dtd = xml::NitfLikeDtd();
  xpath::QueryGenerator::Options qopts;
  qopts.max_length = 6;
  qopts.min_length = 3;
  qopts.filters_per_expr = 1;
  // One pool serves the initial load and the churn stream; the churn
  // half is effectively unbounded (the mutation thread cycles it).
  std::vector<std::string> exprs =
      xpath::QueryGenerator(&dtd, qopts).GenerateWorkloadStrings(
          num_exprs * 2, 42);
  xml::DocumentGenerator::Options dopts;
  dopts.max_depth = 8;
  dopts.optional_prob = 0.8;
  dopts.repeat_prob = 0.6;
  dopts.max_repeats = 8;
  xml::DocumentGenerator dgen(&dtd, dopts);
  std::vector<xml::Document> documents;
  documents.reserve(num_docs);
  for (size_t d = 0; d < num_docs; ++d) {
    documents.push_back(dgen.Generate(42 * 7919 + d));
  }
  std::vector<xpred::exec::DocRef> refs;
  for (const xml::Document& doc : documents) refs.push_back({&doc});

  core::IndexEpochManager::Options mopts;
  mopts.partitions = partitions;
  core::IndexEpochManager manager(mopts);
  std::vector<core::ExprId> live;
  for (size_t i = 0; i < num_exprs; ++i) {
    Result<core::ExprId> sid = manager.Subscribe(exprs[i]);
    if (sid.ok()) live.push_back(*sid);
  }
  if (!manager.Publish().ok()) std::abort();

  xpred::exec::ParallelFilter::Options options;
  options.threads = threads;
  xpred::exec::ParallelFilter filter(options, &manager);

  {  // Warmup: pins pooled scratch allocations on every worker.
    xpred::exec::CollectingResultSink sink;
    (void)filter.FilterBatch(refs, sink);
  }

  // Interleave A/B passes; best-of estimator on each side. The same
  // filter and manager serve both sides — only the presence of the
  // mutation thread differs. Churn totals accumulate across every
  // churn window so subscribes_per_sec reflects the sustained rate.
  const uint64_t epochs_before = manager.stats().publishes;
  double baseline_dps = 0;
  double churn_dps = 0;
  uint64_t churn_subscribes = 0;
  double churn_seconds = 0;
  size_t next_expr = num_exprs;
  for (size_t pass = 0; pass < passes; ++pass) {
    baseline_dps = std::max(baseline_dps, TimedPass(filter, refs));

    std::atomic<bool> stop{false};
    uint64_t window_subs = 0;
    std::thread churner([&] {
      // Steady-state churn: alternate subscribe/unsubscribe so the
      // live set stays at num_exprs, publishing a new epoch every
      // publish_every ops. TryPublish keeps the writer loop moving
      // when a slow batch still pins the spare side.
      size_t since_publish = 0;
      size_t victim = 0;
      while (!stop.load(std::memory_order_acquire)) {
        Result<core::ExprId> sid =
            manager.Subscribe(exprs[next_expr % exprs.size()]);
        ++next_expr;
        if (sid.ok()) {
          ++window_subs;
          live.push_back(*sid);
        }
        if (live.size() > 1) {
          if (manager.Unsubscribe(live[victim % live.size()]).ok()) {
            live.erase(live.begin() +
                       static_cast<ptrdiff_t>(victim % live.size()));
          }
          ++victim;
        }
        if (++since_publish >= publish_every) {
          since_publish = 0;
          (void)manager.TryPublish();
        }
      }
      (void)manager.TryPublish();
    });
    Stopwatch window;
    churn_dps = std::max(churn_dps, TimedPass(filter, refs));
    churn_seconds += window.ElapsedMillis() / 1000.0;
    stop.store(true, std::memory_order_release);
    churner.join();
    churn_subscribes += window_subs;
  }
  const uint64_t epochs_published =
      manager.stats().publishes - epochs_before;
  const double degradation = 1.0 - churn_dps / baseline_dps;
  const double subs_per_sec =
      churn_seconds > 0 ? static_cast<double>(churn_subscribes) /
                              churn_seconds
                        : 0;

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("churn: %zu exprs, %zu docs, %zu passes, threads=%zu, "
              "partitions=%zu, publish_every=%zu, hw_concurrency=%u, "
              "build=%s\n",
              num_exprs, num_docs, passes, threads, partitions,
              publish_every, hw, XPRED_BUILD_TYPE);
  std::printf("  baseline:   %.1f docs/sec (writer quiescent)\n",
              baseline_dps);
  std::printf("  churning:   %.1f docs/sec (%llu epochs published)\n",
              churn_dps,
              static_cast<unsigned long long>(epochs_published));
  std::printf("  subscribes: %.0f/sec sustained\n", subs_per_sec);
  std::printf("  degradation: %.2f%%\n", 100.0 * degradation);

  if (epochs_published == 0) {
    std::fprintf(stderr, "no epochs published during churn windows — "
                 "the live path is not exercised\n");
    return 1;
  }
  if (churn_subscribes == 0) {
    std::fprintf(stderr, "no subscribes landed during churn windows — "
                 "the writer never ran\n");
    return 1;
  }

  const char* dir = std::getenv("XPRED_BENCH_METRICS_DIR");
  if (dir != nullptr) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::string path = std::string(dir) + "/churn.json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    out.precision(17);  // Round-trippable doubles: the checker
                        // recomputes degradation_fraction from the
                        // throughputs and compares.
    out << "{\n"
        << "  \"bench\": \"churn\",\n"
        << "  \"build_type\": \"" << XPRED_BUILD_TYPE << "\",\n"
        << "  \"hardware_concurrency\": " << hw << ",\n"
        << "  \"expressions\": " << num_exprs << ",\n"
        << "  \"documents\": " << num_docs << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"partitions\": " << partitions << ",\n"
        << "  \"publish_every\": " << publish_every << ",\n"
        << "  \"epochs_published\": " << epochs_published << ",\n"
        << "  \"churn_subscribes\": " << churn_subscribes << ",\n"
        << "  \"subscribes_per_sec\": " << subs_per_sec << ",\n"
        << "  \"baseline_docs_per_sec\": " << baseline_dps << ",\n"
        << "  \"churn_docs_per_sec\": " << churn_dps << ",\n"
        << "  \"degradation_fraction\": " << degradation << "\n"
        << "}\n";
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace xpred::bench

int main() { return xpred::bench::Main(); }
