// Figure 9: effect of attribute-based filters per expression.
//
// Paper setup: workloads with 1 and 2 filters per path on both DTDs;
// our engine in inline and selection-postponed configurations, YFilter
// in its (recommended) selection-postponed configuration. Expected
// shapes: on the highly selective NITF workload the selection-
// postponed variants are insensitive to the filter count (filters are
// only checked for the few structural matches) while inline pays per
// additional filter; on the high-match PSD workload inline wins — the
// postponed variants re-run occurrence determination for the many
// structural matches.

#include "bench_util.h"

namespace xpred::bench {
namespace {

struct EngineRow {
  const char* label;
  const char* engine;
};

const EngineRow kRows[] = {
    {"inline", "basic-pc-ap"},
    {"sp", "basic-pc-ap-sp"},
    {"yfilter-sp", "yfilter"},
};
const uint32_t kFilters[] = {0, 1, 2};

void BM_Fig9(benchmark::State& state) {
  WorkloadSpec spec;
  spec.psd = (state.range(2) == 1);
  spec.distinct = true;
  spec.expressions = spec.psd ? Scaled(10000) : Scaled(50000);
  spec.max_length = 6;
  spec.min_length = spec.psd ? 3 : 4;
  spec.filters = kFilters[state.range(1)];
  RunFilterBenchmark(state, kRows[state.range(0)].engine, spec);
}

void RegisterAll() {
  for (long dtd = 0; dtd <= 1; ++dtd) {
    for (size_t e = 0; e < std::size(kRows); ++e) {
      for (size_t f = 0; f < std::size(kFilters); ++f) {
        std::string name = std::string("Fig9/") +
                           (dtd == 1 ? "psd/" : "nitf/") + kRows[e].label +
                           "-" + std::to_string(kFilters[f]);
        benchmark::RegisterBenchmark(name.c_str(), BM_Fig9)
            ->Args({static_cast<long>(e), static_cast<long>(f), dtd})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(2);
      }
    }
  }
}

const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace xpred::bench

BENCHMARK_MAIN();
