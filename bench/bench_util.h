#ifndef XPRED_BENCH_BENCH_UTIL_H_
#define XPRED_BENCH_BENCH_UTIL_H_

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/matcher.h"
#include "indexfilter/index_filter.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "xfilter/xfilter.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"
#include "yfilter/yfilter.h"

namespace xpred::bench {

/// \brief Scale factor for workload sizes, from XPRED_BENCH_SCALE.
///
/// The paper's experiments run up to 5 million expressions on 500
/// documents; the default scale keeps each bench binary in the
/// seconds-to-a-minute range on a laptop while preserving every trend.
/// Set XPRED_BENCH_SCALE=10 (and XPRED_BENCH_DOCS=500) to approach
/// paper-scale workloads.
inline double Scale() {
  static double scale = [] {
    const char* env = std::getenv("XPRED_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    return std::max(0.001, std::atof(env));
  }();
  return scale;
}

/// Number of documents filtered per measurement (paper: 500).
inline size_t DocCount() {
  static size_t docs = [] {
    const char* env = std::getenv("XPRED_BENCH_DOCS");
    if (env == nullptr) return size_t{20};
    return static_cast<size_t>(std::max(1L, std::atol(env)));
  }();
  return docs;
}

inline size_t Scaled(size_t paper_count) {
  return std::max<size_t>(10, static_cast<size_t>(
                                  static_cast<double>(paper_count) * Scale()));
}

/// Workload parameters, mirroring the paper's generator knobs.
struct WorkloadSpec {
  bool psd = false;          // PSD-like vs NITF-like DTD.
  size_t expressions = 0;    // Number of expressions (subscriptions).
  bool distinct = true;      // Paper parameter D.
  uint32_t max_length = 6;   // Paper parameter L.
  uint32_t min_length = 3;   // Lower bound on expression length.
  double wildcard = 0.2;     // Paper parameter W.
  double descendant = 0.2;   // Paper parameter DO.
  uint32_t filters = 0;      // Attribute filters per expression.
  uint32_t doc_depth = 8;    // IBM-generator max levels (paper: 6-10).
  uint64_t seed = 42;

  std::string Key() const {
    return StringPrintf("%d|%zu|%d|%u|%u|%.3f|%.3f|%u|%u|%llu",
                        psd ? 1 : 0, expressions, distinct ? 1 : 0,
                        max_length, min_length, wildcard, descendant,
                        filters, doc_depth,
                        static_cast<unsigned long long>(seed));
  }
};

/// A generated workload: expressions + document corpus.
struct Workload {
  const xml::Dtd* dtd = nullptr;
  std::vector<std::string> expressions;
  std::vector<xml::Document> documents;
};

/// Builds (and caches) the workload for \p spec. Caching matters:
/// benchmark registration re-enters with the same parameters for every
/// engine.
inline const Workload& GetWorkload(const WorkloadSpec& spec) {
  static std::map<std::string, std::unique_ptr<Workload>>* cache =
      new std::map<std::string, std::unique_ptr<Workload>>();
  std::string key = spec.Key();
  auto it = cache->find(key);
  if (it != cache->end()) return *it->second;

  auto workload = std::make_unique<Workload>();
  workload->dtd = spec.psd ? &xml::PsdLikeDtd() : &xml::NitfLikeDtd();

  xpath::QueryGenerator::Options qopts;
  qopts.max_length = spec.max_length;
  qopts.min_length = spec.min_length;
  qopts.wildcard_prob = spec.wildcard;
  qopts.descendant_prob = spec.descendant;
  qopts.distinct = spec.distinct;
  qopts.filters_per_expr = spec.filters;
  xpath::QueryGenerator qgen(workload->dtd, qopts);
  workload->expressions =
      qgen.GenerateWorkloadStrings(spec.expressions, spec.seed);

  xml::DocumentGenerator::Options dopts;
  dopts.max_depth = spec.doc_depth;
  if (!spec.psd) {
    // The NITF content models are heavily optional; richer expansion
    // keeps the documents near the paper's ~140-tag average.
    dopts.optional_prob = 0.8;
    dopts.repeat_prob = 0.6;
    dopts.max_repeats = 8;
  }
  xml::DocumentGenerator dgen(workload->dtd, dopts);
  workload->documents.reserve(DocCount());
  for (size_t d = 0; d < DocCount(); ++d) {
    workload->documents.push_back(dgen.Generate(spec.seed * 7919 + d));
  }

  const Workload& ref = *workload;
  cache->emplace(std::move(key), std::move(workload));
  return ref;
}

/// Engine factory keyed by the names used in the paper's figures.
inline std::unique_ptr<core::FilterEngine> MakeEngine(
    const std::string& name) {
  core::Matcher::Options options;
  if (name == "basic") {
    options.mode = core::Matcher::Mode::kBasic;
  } else if (name == "basic-pc") {
    options.mode = core::Matcher::Mode::kPrefixCovering;
  } else if (name == "basic-pc-ap") {
    options.mode = core::Matcher::Mode::kPrefixCoveringAccessPredicate;
  } else if (name == "trie-dfs") {
    options.mode = core::Matcher::Mode::kTrieDfs;
  } else if (name == "basic-pc-ap-sp") {
    options.mode = core::Matcher::Mode::kPrefixCoveringAccessPredicate;
    options.attribute_mode = core::AttributeMode::kSelectionPostponed;
  } else if (name == "basic-pc-ap-shortest") {
    options.mode = core::Matcher::Mode::kPrefixCoveringAccessPredicate;
    options.covering_longest_first = false;
  } else if (name == "basic-pc-ap-cc") {
    options.mode = core::Matcher::Mode::kPrefixCoveringAccessPredicate;
    options.enable_containment_covering = true;
  } else if (name == "xfilter") {
    return std::make_unique<xfilter::XFilter>();
  } else if (name == "yfilter") {
    return std::make_unique<yfilter::YFilter>();
  } else if (name == "index-filter") {
    return std::make_unique<indexfilter::IndexFilter>();
  } else {
    std::fprintf(stderr, "unknown engine '%s'\n", name.c_str());
    std::abort();
  }
  return std::make_unique<core::Matcher>(options);
}

/// Engines loaded with a workload, cached across benchmark
/// registrations (loading 125k expressions takes noticeable time).
inline core::FilterEngine& GetLoadedEngine(const std::string& engine_name,
                                           const WorkloadSpec& spec) {
  static std::map<std::string, std::unique_ptr<core::FilterEngine>>* cache =
      new std::map<std::string, std::unique_ptr<core::FilterEngine>>();
  std::string key = engine_name + "@" + spec.Key();
  auto it = cache->find(key);
  if (it != cache->end()) return *it->second;

  const Workload& workload = GetWorkload(spec);
  std::unique_ptr<core::FilterEngine> engine = MakeEngine(engine_name);
  for (const std::string& expr : workload.expressions) {
    Result<core::ExprId> id = engine->AddExpression(expr);
    if (!id.ok()) {
      std::fprintf(stderr, "AddExpression(%s) failed: %s\n", expr.c_str(),
                   id.status().ToString().c_str());
      std::abort();
    }
  }
  core::FilterEngine& ref = *engine;
  cache->emplace(std::move(key), std::move(engine));
  return ref;
}

/// Warmup passes over the corpus before the first timed iteration,
/// from XPRED_BENCH_WARMUP (default 1). A pinned warmup pass fills the
/// engine's pooled per-document scratch (publication buffers, OccPair
/// lists, path arenas) so steady-state allocation behavior — not
/// first-touch growth — is what gets measured.
inline size_t WarmupPasses() {
  static size_t passes = [] {
    const char* env = std::getenv("XPRED_BENCH_WARMUP");
    if (env == nullptr) return size_t{1};
    return static_cast<size_t>(std::max(0L, std::atol(env)));
  }();
  return passes;
}

/// Percentile of a sample set (nearest-rank); \p samples is sorted in
/// place.
inline double Percentile(std::vector<double>* samples, double q) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(samples->size()));
  if (rank >= samples->size()) rank = samples->size() - 1;
  return (*samples)[rank];
}

/// Directory for per-benchmark metrics sidecar files, from
/// XPRED_BENCH_METRICS_DIR. Disabled (nullptr) when unset.
inline const char* MetricsSidecarDir() {
  static const char* dir = std::getenv("XPRED_BENCH_METRICS_DIR");
  return dir;
}

/// Writes the interval delta of \p engine's metrics since \p before to
/// `$XPRED_BENCH_METRICS_DIR/<name>.json` (schema: see
/// scripts/check_metrics_schema.py). \p bench_name may contain
/// separators ('/', '|', ...); every non-alphanumeric byte is mapped
/// to '_' in the file name.
inline void WriteBenchMetricsSidecar(core::FilterEngine& engine,
                                     const std::string& bench_name,
                                     const obs::MetricsSnapshot& before) {
  const char* dir = MetricsSidecarDir();
  if (dir == nullptr) return;
  obs::MetricsSnapshot delta =
      engine.metrics_registry()->Snapshot().DeltaSince(before);
  std::string file_name = bench_name;
  for (char& c : file_name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-') c = '_';
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string path = std::string(dir) + "/" + file_name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open metrics sidecar %s\n", path.c_str());
    return;
  }
  obs::WriteMetricsSidecarJson(delta, bench_name, engine.name(), &out);
}

/// One measurement pass: filters every document in the corpus once;
/// sets the paper's metrics as counters:
///   ms_per_doc  — total filtering time per document (the paper's
///                 primary metric),
///   match_pct   — percentage of subscriptions matched, averaged over
///                 documents (the workload-selectivity regime).
inline void RunFilterBenchmark(benchmark::State& state,
                               const std::string& engine_name,
                               const WorkloadSpec& spec) {
  core::FilterEngine& engine = GetLoadedEngine(engine_name, spec);
  const Workload& workload = GetWorkload(spec);

  obs::MetricsSnapshot before;
  if (MetricsSidecarDir() != nullptr) {
    before = engine.metrics_registry()->Snapshot();
  }

  std::vector<core::ExprId> matched;
  for (size_t pass = 0; pass < WarmupPasses(); ++pass) {
    for (const xml::Document& doc : workload.documents) {
      matched.clear();
      Status st = engine.FilterDocument(doc, &matched);
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
  }

  size_t total_matched = 0;
  size_t docs_filtered = 0;
  Stopwatch wall;
  Stopwatch doc_watch;
  double elapsed_ms = 0;
  std::vector<double> doc_ms;
  for (auto _ : state) {
    wall.Reset();
    for (const xml::Document& doc : workload.documents) {
      matched.clear();
      doc_watch.Reset();
      Status st = engine.FilterDocument(doc, &matched);
      doc_ms.push_back(doc_watch.ElapsedMillis());
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(matched.data());
      total_matched += matched.size();
      ++docs_filtered;
    }
    elapsed_ms += wall.ElapsedMillis();
  }

  if (docs_filtered > 0) {
    double subs = static_cast<double>(engine.subscription_count());
    state.counters["ms_per_doc"] =
        elapsed_ms / static_cast<double>(docs_filtered);
    state.counters["p50_ms"] = Percentile(&doc_ms, 0.50);
    state.counters["p99_ms"] = Percentile(&doc_ms, 0.99);
    state.counters["match_pct"] =
        100.0 * static_cast<double>(total_matched) /
        (static_cast<double>(docs_filtered) * std::max(1.0, subs));
    state.counters["expressions"] = subs;
  }
  if (MetricsSidecarDir() != nullptr) {
    // This benchmark library version has no State::name(); the
    // engine@spec key identifies the run just as uniquely.
    WriteBenchMetricsSidecar(engine, engine_name + "@" + spec.Key(), before);
  }
}

}  // namespace xpred::bench

#endif  // XPRED_BENCH_BENCH_UTIL_H_
