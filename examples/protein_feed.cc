// Protein-annotation feed — the paper's high-match workload (PSD):
// bioinformatics pipelines register queries over a feed of protein
// database entries. Most queries match most records, the regime where
// the predicate-based engine outperforms the automaton and index
// baselines (paper §6.2, Figure 6(b)).
//
// This example runs the same workload through all three engine
// families and cross-checks that they agree.
//
//   $ ./build/examples/protein_feed [queries] [documents]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/matcher.h"
#include "indexfilter/index_filter.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"
#include "yfilter/yfilter.h"

namespace {

using namespace xpred;  // NOLINT: example brevity.

struct Row {
  std::string name;
  double ms_per_doc = 0;
  size_t deliveries = 0;
};

Row RunEngine(core::FilterEngine* engine,
              const std::vector<std::string>& queries,
              const std::vector<xml::Document>& feed,
              std::vector<std::vector<core::ExprId>>* outputs) {
  for (const std::string& q : queries) {
    Result<core::ExprId> id = engine->AddExpression(q);
    if (!id.ok()) {
      std::fprintf(stderr, "bad query '%s': %s\n", q.c_str(),
                   id.status().ToString().c_str());
      std::exit(1);
    }
  }
  Row row;
  row.name = std::string(engine->name());
  Stopwatch watch;
  for (const xml::Document& doc : feed) {
    std::vector<core::ExprId> matched;
    Status st = engine->FilterDocument(doc, &matched);
    if (!st.ok()) {
      std::fprintf(stderr, "filtering failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    row.deliveries += matched.size();
    std::sort(matched.begin(), matched.end());
    outputs->push_back(std::move(matched));
  }
  row.ms_per_doc = watch.ElapsedMillis() / static_cast<double>(feed.size());
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_queries =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5000;
  size_t num_documents =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 50;

  const xml::Dtd& dtd = xml::PsdLikeDtd();

  xpath::QueryGenerator::Options qopts;
  qopts.max_length = 6;
  qopts.min_length = 3;
  qopts.distinct = true;
  xpath::QueryGenerator qgen(&dtd, qopts);
  std::vector<std::string> queries =
      qgen.GenerateWorkloadStrings(num_queries, /*seed=*/99);
  std::printf("%zu distinct queries over the PSD-like DTD\n",
              queries.size());

  xml::DocumentGenerator dgen(&dtd, {});
  std::vector<xml::Document> feed;
  for (size_t d = 0; d < num_documents; ++d) {
    feed.push_back(dgen.Generate(31000 + d));
  }

  core::Matcher matcher;  // basic-pc-ap, inline.
  yfilter::YFilter yf;
  indexfilter::IndexFilter ixf;

  std::vector<std::vector<core::ExprId>> out_matcher;
  std::vector<std::vector<core::ExprId>> out_yf;
  std::vector<std::vector<core::ExprId>> out_ixf;

  Row rows[] = {
      RunEngine(&matcher, queries, feed, &out_matcher),
      RunEngine(&yf, queries, feed, &out_yf),
      RunEngine(&ixf, queries, feed, &out_ixf),
  };

  for (const Row& row : rows) {
    std::printf("%-14s %8.3f ms/doc   %zu deliveries (%.1f%% avg match)\n",
                row.name.c_str(), row.ms_per_doc, row.deliveries,
                100.0 * static_cast<double>(row.deliveries) /
                    (static_cast<double>(num_documents) *
                     static_cast<double>(queries.size())));
  }

  // Cross-check: the three engine families must agree exactly.
  if (out_matcher == out_yf && out_matcher == out_ixf) {
    std::printf("\nall three engines agree on every document.\n");
    return 0;
  }
  std::printf("\nENGINE DISAGREEMENT DETECTED — this is a bug.\n");
  return 1;
}
