// Live subscription maintenance over a document stream.
//
// Demonstrates two library extensions working together:
//   * streaming filtering (SAX-driven, one path at a time, constant
//     memory in document size), and
//   * dynamic subscription add/remove between documents — the paper
//     cites exactly this as the weakness of compiled-automaton
//     approaches (XPush).
//
//   $ ./build/examples/live_subscriptions

#include <cstdio>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "core/streaming.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"

namespace {

using namespace xpred;  // NOLINT: example brevity.

void Deliver(const char* stage, size_t doc_index,
             const std::vector<core::ExprId>& matched,
             const std::vector<std::string>& names) {
  std::printf("  [%s] doc %zu -> %zu deliveries:", stage, doc_index,
              matched.size());
  for (core::ExprId id : matched) {
    std::printf(" %s", names[id].c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  core::Matcher matcher;
  core::StreamingFilter stream(&matcher);

  // Three initial subscribers to a protein-entry feed.
  std::vector<std::string> names;
  auto subscribe = [&](const char* label, const char* expr) {
    Result<core::ExprId> id = matcher.AddExpression(expr);
    if (!id.ok()) {
      std::fprintf(stderr, "bad expression %s: %s\n", expr,
                   id.status().ToString().c_str());
      std::exit(1);
    }
    names.resize(*id + 1);
    names[*id] = label;
    std::printf("+ subscribed %-10s %s  (sid %u)\n", label, expr, *id);
    return *id;
  };

  core::ExprId keywords =
      subscribe("keywords", "//keywords/keyword");
  subscribe("genetics", "/ProteinDatabase/ProteinEntry/genetics");
  subscribe("refs", "ProteinEntry/reference/refinfo/authors");

  xml::DocumentGenerator generator(&xml::PsdLikeDtd(), {});

  std::printf("\nphase 1: three subscribers\n");
  for (size_t d = 0; d < 3; ++d) {
    std::string xml = generator.Generate(500 + d).ToXml();
    std::vector<core::ExprId> matched;
    Status st = stream.FilterXml(xml, &matched);
    if (!st.ok()) {
      std::fprintf(stderr, "filter failed: %s\n", st.ToString().c_str());
      return 1;
    }
    Deliver("3 subs", d, matched, names);
  }

  std::printf("\nphase 2: 'keywords' unsubscribes, 'features' joins\n");
  if (Status st = matcher.RemoveSubscription(keywords); !st.ok()) {
    std::fprintf(stderr, "remove failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("- unsubscribed keywords (sid %u)\n", keywords);
  subscribe("features", "//feature/seq-spec");

  for (size_t d = 3; d < 6; ++d) {
    std::string xml = generator.Generate(500 + d).ToXml();
    std::vector<core::ExprId> matched;
    Status st = stream.FilterXml(xml, &matched);
    if (!st.ok()) {
      std::fprintf(stderr, "filter failed: %s\n", st.ToString().c_str());
      return 1;
    }
    Deliver("swap ", d, matched, names);
  }

  std::printf(
      "\nengine: %zu distinct expressions, %zu distinct predicates, "
      "max streaming depth %zu\n",
      matcher.distinct_expression_count(),
      matcher.distinct_predicate_count(), stream.max_depth_seen());
  return 0;
}
