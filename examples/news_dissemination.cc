// Selective news dissemination — the scenario motivating the paper's
// introduction: many users subscribe to fine-grained interests over a
// stream of NITF news documents; the engine routes each incoming
// document to the matching subscribers.
//
//   $ ./build/examples/news_dissemination [subscriptions] [documents]
//
// Defaults: 20,000 subscriptions, 50 documents. Prints routing results
// and throughput for the paper's three algorithm variants.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/matcher.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"

namespace {

using namespace xpred;  // NOLINT: example brevity.

std::unique_ptr<core::Matcher> MakeEngine(core::Matcher::Mode mode) {
  core::Matcher::Options options;
  options.mode = mode;
  return std::make_unique<core::Matcher>(options);
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_subscriptions = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                      : 20000;
  size_t num_documents = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 50;

  const xml::Dtd& dtd = xml::NitfLikeDtd();

  // Subscriptions: mostly structural interests, some with attribute
  // filters ("articles whose urgency is high", ...).
  std::printf("generating %zu subscriptions over the NITF-like DTD...\n",
              num_subscriptions);
  xpath::QueryGenerator::Options qopts;
  qopts.max_length = 6;
  qopts.min_length = 3;
  qopts.filters_per_expr = 1;
  qopts.distinct = false;  // Users share interests.
  xpath::QueryGenerator qgen(&dtd, qopts);
  std::vector<std::string> subscriptions =
      qgen.GenerateWorkloadStrings(num_subscriptions, /*seed=*/2026);

  // The incoming news stream.
  xml::DocumentGenerator::Options dopts;
  dopts.max_depth = 8;
  xml::DocumentGenerator dgen(&dtd, dopts);
  std::vector<xml::Document> stream;
  for (size_t d = 0; d < num_documents; ++d) {
    stream.push_back(dgen.Generate(7000 + d));
  }

  struct Variant {
    const char* label;
    core::Matcher::Mode mode;
  };
  const Variant variants[] = {
      {"basic", core::Matcher::Mode::kBasic},
      {"basic-pc", core::Matcher::Mode::kPrefixCovering},
      {"basic-pc-ap",
       core::Matcher::Mode::kPrefixCoveringAccessPredicate},
  };

  for (const Variant& variant : variants) {
    std::unique_ptr<core::Matcher> engine = MakeEngine(variant.mode);
    Stopwatch build;
    for (const std::string& s : subscriptions) {
      Result<core::ExprId> id = engine->AddExpression(s);
      if (!id.ok()) {
        std::fprintf(stderr, "bad subscription '%s': %s\n", s.c_str(),
                     id.status().ToString().c_str());
        return 1;
      }
    }
    double build_ms = build.ElapsedMillis();

    Stopwatch route;
    size_t deliveries = 0;
    std::vector<core::ExprId> matched;
    for (const xml::Document& doc : stream) {
      matched.clear();
      Status st = engine->FilterDocument(doc, &matched);
      if (!st.ok()) {
        std::fprintf(stderr, "filtering failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      deliveries += matched.size();
    }
    double route_ms = route.ElapsedMillis();

    std::printf(
        "%-12s build %7.1f ms | route %7.1f ms (%.2f ms/doc) | "
        "%zu deliveries (%.1f%% avg match) | %zu distinct exprs, "
        "%zu distinct predicates\n",
        variant.label, build_ms, route_ms,
        route_ms / static_cast<double>(num_documents), deliveries,
        100.0 * static_cast<double>(deliveries) /
            (static_cast<double>(num_documents) *
             static_cast<double>(num_subscriptions)),
        engine->distinct_expression_count(),
        engine->distinct_predicate_count());
  }
  return 0;
}
