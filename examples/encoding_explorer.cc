// Encoding explorer: shows the paper's machinery at work on concrete
// inputs — the §3.2 XPE-to-predicate mapping (examples s1-s15), the
// §3.3 publication encoding (Example 1), and the §4.1 predicate
// matching results (Table 1).
//
//   $ ./build/examples/encoding_explorer            # built-in tour
//   $ ./build/examples/encoding_explorer '/a//b/c'  # encode your own

#include <cstdio>
#include <string>
#include <vector>

#include "common/interner.h"
#include "core/encoder.h"
#include "core/occurrence.h"
#include "core/predicate_index.h"
#include "core/publication.h"
#include "xml/document.h"
#include "xml/path.h"
#include "xpath/parser.h"

namespace {

using namespace xpred;  // NOLINT: example brevity.

void ShowEncoding(const std::string& text, Interner* interner) {
  Result<xpath::PathExpr> expr = xpath::ParseXPath(text);
  if (!expr.ok()) {
    std::printf("  %-22s  !! %s\n", text.c_str(),
                expr.status().ToString().c_str());
    return;
  }
  Result<core::EncodedExpression> enc = core::EncodeExpression(
      *expr, core::AttributeMode::kInline, interner);
  if (!enc.ok()) {
    std::printf("  %-22s  !! %s\n", text.c_str(),
                enc.status().ToString().c_str());
    return;
  }
  std::printf("  %-22s  %s\n", text.c_str(),
              enc->ToString(*interner).c_str());
}

void PaperExamples(Interner* interner) {
  std::printf("=== XPE encodings (paper section 3.2) ===\n");
  const char* const examples[] = {
      "/a/b/b",   "a",           "a/a/b/c",      // simple (s1-s3)
      "/a/*/*/b", "/a/b/*/*",    "/*/a/b",       // wildcards (s4-s6)
      "/*/*/*/*", "a/b/*/*",     "*/*/a/*/b",    // (s7-s9)
      "a/*/*/b/c", "*/*/*/*",                    // (s10-s11)
      "/a//b/c",  "/*/b//c/*",   "a/b//c",       // descendants (s12-s14)
      "*/a/*/b//c/*/*",                          // (s15)
      "a/c/*/a//c", "a//c/*/a/c",                // order sensitivity
      "/*/t1[@x = 3]",                           // attribute filter (§5)
  };
  for (const char* e : examples) ShowEncoding(e, interner);
}

void Table1Demo() {
  std::printf("\n=== Predicate matching (paper Example 2 / Table 1) ===\n");
  Interner interner;

  // The two expressions of Table 1.
  const std::vector<std::string> exprs = {"a//b/c", "c//b//a"};
  core::PredicateIndex index;
  std::vector<std::vector<core::PredicateId>> chains;
  std::vector<std::string> chain_text;
  for (const std::string& text : exprs) {
    auto expr = xpath::ParseXPath(text);
    auto enc = core::EncodeExpression(*expr, core::AttributeMode::kInline,
                                      &interner);
    std::vector<core::PredicateId> pids;
    for (const core::Predicate& p : enc->predicates) {
      pids.push_back(*index.InsertOrFind(p));
    }
    chains.push_back(pids);
    chain_text.push_back(enc->ToString(interner));
  }

  // The document path (a, b, c, a, b, c) from Example 1.
  auto doc = xml::Document::Parse(
      "<a><b><c><a><b><c/></b></a></c></b></a>");
  std::vector<xml::DocumentPath> paths = xml::ExtractPaths(*doc);
  core::Publication pub(paths[0], interner);
  std::printf("publication: %s\n\n", pub.ToString(interner).c_str());

  core::MatchResultSet results;
  index.Match(pub, &results);

  for (size_t s = 0; s < exprs.size(); ++s) {
    std::printf("%s  ->  %s\n", exprs[s].c_str(), chain_text[s].c_str());
    bool all_present = true;
    std::vector<const core::OccList*> views;
    for (core::PredicateId pid : chains[s]) {
      const auto* r = results.Find(pid);
      std::printf("  %-28s matches:",
                  index.predicate(pid).ToString(interner).c_str());
      if (r == nullptr) {
        std::printf(" (none)\n");
        all_present = false;
        continue;
      }
      for (const core::OccPair& p : *r) {
        std::printf(" (%u,%u)", p.first, p.second);
      }
      std::printf("\n");
      views.push_back(r);
    }
    bool matched =
        all_present && core::OccurrenceDeterminer::Determine(views);
    std::printf("  => occurrence determination: %s\n\n",
                matched ? "MATCH" : "no match");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    Interner interner;
    std::printf("=== encodings ===\n");
    for (int i = 1; i < argc; ++i) ShowEncoding(argv[i], &interner);
    return 0;
  }
  Interner interner;
  PaperExamples(&interner);
  Table1Demo();
  return 0;
}
