// Quickstart: register a handful of XPath subscriptions and filter an
// XML document through the predicate-based engine.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "xml/document.h"

int main() {
  using xpred::core::ExprId;
  using xpred::core::Matcher;

  // 1. Create an engine. The default configuration is the paper's best
  //    variant: prefix covering + access predicates, inline attribute
  //    evaluation.
  Matcher matcher;

  // 2. Register subscriptions. Each call returns a subscription id;
  //    duplicates share all internal state.
  const std::vector<std::string> subscriptions = {
      "/order/items/item",                 // absolute path
      "//item[@price >= 100]",             // descendant + attribute filter
      "customer/name",                     // relative path
      "/order[items/item]/customer",       // nested path filter
      "/order/*/item",                     // wildcard
  };
  std::vector<ExprId> ids;
  for (const std::string& s : subscriptions) {
    xpred::Result<ExprId> id = matcher.AddExpression(s);
    if (!id.ok()) {
      std::fprintf(stderr, "failed to add '%s': %s\n", s.c_str(),
                   id.status().ToString().c_str());
      return 1;
    }
    ids.push_back(*id);
  }

  // 3. Filter a document. FilterXml parses; FilterDocument accepts an
  //    already-parsed xpred::xml::Document.
  const char* document = R"(
      <order id="42">
        <customer><name>Ada</name></customer>
        <items>
          <item price="120" sku="widget"/>
          <item price="5" sku="bolt"/>
        </items>
      </order>)";

  std::vector<ExprId> matched;
  xpred::Status st = matcher.FilterXml(document, &matched);
  if (!st.ok()) {
    std::fprintf(stderr, "filtering failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("document matched %zu of %zu subscriptions:\n", matched.size(),
              subscriptions.size());
  for (ExprId id : matched) {
    std::printf("  [%u] %s\n", id, subscriptions[id].c_str());
  }

  // 4. Inspect engine statistics (the paper's §6.5 breakdown).
  const xpred::core::EngineStats& stats = matcher.stats();
  std::printf(
      "\nstats: %llu docs, %llu paths, %zu distinct predicates, "
      "%llu occurrence-determination runs\n",
      static_cast<unsigned long long>(stats.documents),
      static_cast<unsigned long long>(stats.paths),
      matcher.distinct_predicate_count(),
      static_cast<unsigned long long>(stats.occurrence_runs));
  return 0;
}
